//! Overtile-like overlapped time tiling.
//!
//! Each launch advances `ts` time steps. A block owns an output tile and
//! redundantly computes a halo that shrinks by the stencil radius every
//! step, so blocks never communicate within a launch — the classic
//! overlapped-tiling trade: DRAM traffic amortized over `ts` steps, paid
//! for with redundant computation and divergence at the shrinking-region
//! guards. Following the paper's observation about Overtile's autotuned
//! configurations, 3D stencils fall back to `ts = 1` (pure spatial
//! tiling).

use gpu_codegen::ir::{Cond, FExpr, IExpr, Kernel, Launch, LaunchPlan, SharedBuf, Stmt};
use stencil::StencilProgram;

use crate::common::{self, SpaceTiling};

/// Guard factory used by the chunked sweep: maps per-dimension local
/// coordinates to an extra guard condition plus prologue statements.
type ExtraGuard<'a> = dyn Fn(&[IExpr]) -> (Cond, Vec<Stmt>) + 'a;

/// Time steps per launch chosen like Overtile's autotuner: time-tile 2D
/// kernels, fall back to spatial tiling in 3D.
///
/// The depth must satisfy `ts ≡ 1 (mod planes)` (or `ts == 1`): the launch
/// output plane must not alias any input plane, because concurrent blocks
/// of one launch read the input planes while others write the output —
/// the ring-buffer expression of overlapped tiling's ping-pong arrays.
pub fn default_time_tile(spatial_dims: usize) -> usize {
    match spatial_dims {
        1 | 2 => 5,
        _ => 1,
    }
}

/// Generates the Overtile-like plan with `ts` time steps per launch.
///
/// # Panics
///
/// Panics if `steps` is not a multiple of `ts` (keeps launch logic simple;
/// the harness picks compatible values).
pub fn generate_overtile_ts(
    program: &StencilProgram,
    dims: &[usize],
    steps: usize,
    ts: usize,
) -> LaunchPlan {
    assert!(
        ts >= 1 && steps.is_multiple_of(ts),
        "steps must be a multiple of ts"
    );
    let ring = program.max_dt() as usize + 1;
    assert!(
        ts == 1 || ts % ring == 1,
        "time-tile depth {ts} aliases the ring of {ring} planes: concurrent \
         blocks would read planes another block's copy-out overwrites \
         (choose ts = 1 mod planes)"
    );
    let n = program.spatial_dims();
    let planes = program.max_dt() + 1;
    let radius = program.radius();
    let lo: Vec<i64> = radius.clone();
    let hi: Vec<i64> = dims
        .iter()
        .zip(&radius)
        .map(|(&d, &r)| d as i64 - r - 1)
        .collect();
    let tile = common::default_tile(n);
    let tiling = SpaceTiling::new(dims, &tile);
    let nthreads: i64 = tiling.block_dim().iter().product::<usize>() as i64;
    // Per-dimension reach of one full outer iteration: statements chain
    // within a step through dt=0 reads (fdtd's hz consumes the ex/ey just
    // produced one cell over), so the per-step halo consumption is the
    // *sum* of the statements' reaches, not their max.
    let stmt_reach: Vec<Vec<i64>> = program
        .statements()
        .iter()
        .map(|st| {
            let mut r = vec![0i64; n];
            for a in st.expr.loads() {
                for (d, &o) in a.offsets.iter().enumerate() {
                    r[d] = r[d].max(o.abs());
                }
            }
            r
        })
        .collect();
    let per_step: Vec<i64> = (0..n)
        .map(|d| stmt_reach.iter().map(|r| r[d]).sum())
        .collect();
    // Halo consumed by statements *after* j within the same step.
    let extra: Vec<Vec<i64>> = (0..program.num_statements())
        .map(|j| {
            (0..n)
                .map(|d| stmt_reach[j + 1..].iter().map(|r| r[d]).sum())
                .collect()
        })
        .collect();
    let reach: Vec<i64> = per_step.iter().map(|&r| r * ts as i64).collect();
    let ext: Vec<i64> = (0..n).map(|d| tile[d] + 2 * reach[d]).collect();

    let shared: Vec<SharedBuf> = program
        .field_names()
        .iter()
        .map(|f| {
            let mut d = vec![planes as usize];
            d.extend(ext.iter().map(|&e| e as usize));
            SharedBuf {
                name: format!("s_{f}"),
                dims: d,
            }
        })
        .collect();

    let v_c = 0usize;
    let v_lin = 1usize;
    let tid = IExpr::ThreadIdx(0).add(IExpr::ThreadIdx(1).scale(tiling.block_dim()[0] as i64));

    // Copy in every ring slot: later steps read the *written* plane slot
    // at boundary cells, which must carry the persisting global values
    // (boundary cells are never recomputed). Loading dt = 0..planes-1
    // covers all ring slots exactly once.
    let entry_dts: Vec<i64> = if ts == 1 {
        // Pure spatial tiling: the output slot never aliases an input slot
        // within the launch, so stage only the planes actually read.
        let mut v: Vec<i64> = Vec::new();
        for st in program.statements() {
            for a in st.expr.loads() {
                if a.dt >= 1 && !v.contains(&a.dt) {
                    v.push(a.dt);
                }
            }
        }
        v
    } else {
        (0..planes).collect()
    };

    // Helper: chunked sweep over a box of `region` extents; `body(locals)`
    // runs under `lin < cells(region)` plus `extra_guard`.
    let chunked = |region: &[i64], extra: &ExtraGuard| -> Vec<Stmt> {
        let rc: i64 = region.iter().product();
        let mut locals: Vec<IExpr> = Vec::new();
        for d in 0..n {
            let tail: i64 = region[d + 1..].iter().product();
            let coord = if tail == 1 {
                IExpr::Var(v_lin)
            } else {
                IExpr::Var(v_lin).fdiv(tail)
            };
            locals.push(coord.modulo(region[d]));
        }
        let (guard, inner) = extra(&locals);
        vec![Stmt::For {
            var: v_c,
            lo: IExpr::Const(0),
            hi: IExpr::Const((rc + nthreads - 1) / nthreads),
            step: 1,
            body: vec![
                Stmt::SetVar {
                    var: v_lin,
                    value: IExpr::Var(v_c).scale(nthreads).add(tid.clone()),
                },
                Stmt::If {
                    cond: Cond::Lt(IExpr::Var(v_lin), IExpr::Const(rc)).and(guard),
                    then_: inner,
                    else_: vec![],
                },
            ],
        }]
    };

    let base = |d: usize| -> IExpr { tiling.tile_index(d).scale(tile[d]).offset(-reach[d]) };

    let mut body: Vec<Stmt> = Vec::new();
    // Copy-in every needed plane of the reach-expanded box, every field.
    for &dt in &entry_dts {
        for field in 0..program.num_fields() {
            body.extend(chunked(&ext, &|locals| {
                let globals: Vec<IExpr> = (0..n).map(|d| base(d).add(locals[d].clone())).collect();
                let mut g = Cond::True;
                for (d, e) in globals.iter().enumerate() {
                    g = g.and(Cond::between(
                        e,
                        IExpr::Const(0),
                        IExpr::Const(dims[d] as i64 - 1),
                    ));
                }
                let plane = IExpr::Param(0).offset(1 - dt).modulo(planes);
                let mut sidx = vec![plane.clone()];
                sidx.extend(locals.iter().cloned());
                (
                    g,
                    vec![
                        Stmt::GlobalLoad {
                            dst: 0,
                            field,
                            plane,
                            index: globals,
                        },
                        Stmt::SharedStore {
                            buf: field,
                            index: sidx,
                            src: FExpr::Reg(0),
                        },
                    ],
                )
            }));
        }
    }
    body.push(Stmt::Sync);

    // ts time steps, each statement sweeping its shrinking region.
    for step in 0..ts as i64 {
        for (j, st) in program.statements().iter().enumerate() {
            let shrink: Vec<i64> = (0..n)
                .map(|d| per_step[d] * (ts as i64 - 1 - step) + extra[j][d])
                .collect();
            let region: Vec<i64> = (0..n).map(|d| tile[d] + 2 * shrink[d]).collect();
            body.extend(chunked(&region, &|locals| {
                // Global coordinates of this compute point.
                let globals: Vec<IExpr> = (0..n)
                    .map(|d| {
                        tiling
                            .tile_index(d)
                            .scale(tile[d])
                            .offset(-shrink[d])
                            .add(locals[d].clone())
                    })
                    .collect();
                let mut g = Cond::True;
                for (d, e) in globals.iter().enumerate() {
                    g = g.and(Cond::between(e, IExpr::Const(lo[d]), IExpr::Const(hi[d])));
                }
                // Shared-local coordinate: global - box base.
                let slocal = |d: usize, off: i64| -> IExpr {
                    locals[d].clone().offset(reach[d] - shrink[d] + off)
                };
                let mut point = Vec::new();
                let mut next_reg = 1usize;
                let t = IExpr::Param(0).offset(step);
                let expr =
                    common::lower_expr(&st.expr, &mut next_reg, &mut point, &mut |acc, reg| {
                        let mut sidx = vec![t.clone().offset(1 - acc.dt).modulo(planes)];
                        for d in 0..n {
                            sidx.push(slocal(d, acc.offsets[d]));
                        }
                        Stmt::SharedLoad {
                            dst: reg,
                            buf: acc.field.0,
                            index: sidx,
                        }
                    });
                let dst = 0usize;
                point.push(Stmt::Compute { dst, expr });
                let mut widx = vec![t.clone().offset(1).modulo(planes)];
                for d in 0..n {
                    widx.push(slocal(d, 0));
                }
                point.push(Stmt::SharedStore {
                    buf: st.writes.0,
                    index: widx,
                    src: FExpr::Reg(dst),
                });
                (g, point)
            }));
            body.push(Stmt::Sync);
        }
    }

    // Copy-out: owned tile region, last iteration's plane, every field.
    let out_plane = IExpr::Param(0).offset(ts as i64).modulo(planes);
    for field in 0..program.num_fields() {
        let tile_region: Vec<i64> = tile.clone();
        body.extend(chunked(&tile_region, &|locals| {
            let globals: Vec<IExpr> = (0..n)
                .map(|d| tiling.tile_index(d).scale(tile[d]).add(locals[d].clone()))
                .collect();
            let mut g = Cond::True;
            for (d, e) in globals.iter().enumerate() {
                g = g.and(Cond::between(e, IExpr::Const(lo[d]), IExpr::Const(hi[d])));
            }
            let mut sidx = vec![out_plane.clone()];
            for d in 0..n {
                sidx.push(locals[d].clone().offset(reach[d]));
            }
            (
                g,
                vec![
                    Stmt::SharedLoad {
                        dst: 0,
                        buf: field,
                        index: sidx,
                    },
                    Stmt::GlobalStore {
                        field,
                        plane: out_plane.clone(),
                        index: globals,
                        src: FExpr::Reg(0),
                    },
                ],
            )
        }));
    }

    let kernel = Kernel {
        name: format!("overtile_{}_ts{ts}", program.name()),
        block_dim: tiling.block_dim(),
        shared,
        n_vars: 2,
        n_regs: common::max_loads(program) + 1,
        n_params: 1,
        body,
    };
    let launches = (0..(steps / ts) as i64)
        .map(|i| Launch {
            kernel: 0,
            params: vec![i * ts as i64],
            blocks: tiling.blocks(),
        })
        .collect();
    LaunchPlan {
        kernels: vec![kernel],
        launches,
        description: format!(
            "overtile-like overlapped tiling of {} (ts = {ts})",
            program.name()
        ),
    }
}

/// Generates the Overtile-like plan with the default time-tile depth.
pub fn generate_overtile(program: &StencilProgram, dims: &[usize], steps: usize) -> LaunchPlan {
    let ring = program.max_dt() as usize + 1;
    let max_ts = default_time_tile(program.spatial_dims());
    let ts = (1..=max_ts)
        .rev()
        .find(|&ts| steps.is_multiple_of(ts) && (ts == 1 || ts % ring == 1))
        .unwrap_or(1);
    generate_overtile_ts(program, dims, steps, ts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::gallery;

    #[test]
    fn two_d_kernels_time_tile() {
        let p = gallery::jacobi2d();
        let plan = generate_overtile(&p, &[32, 32], 15);
        assert_eq!(plan.launches.len(), 3); // 15 steps / ts=5
    }

    #[test]
    fn three_d_falls_back_to_space_tiling() {
        let p = gallery::heat3d();
        let plan = generate_overtile(&p, &[16, 16, 16], 4);
        assert_eq!(plan.launches.len(), 4); // ts = 1
    }

    #[test]
    fn shared_box_grows_with_time_depth() {
        let p = gallery::jacobi2d();
        let p1 = generate_overtile_ts(&p, &[32, 32], 15, 1);
        let p4 = generate_overtile_ts(&p, &[32, 32], 15, 5);
        assert!(p4.kernels[0].shared_bytes() > p1.kernels[0].shared_bytes());
    }
}
