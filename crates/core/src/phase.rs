//! Two-phase hexagonal tile indexing — equations (2)–(5) of the paper
//! (§3.3.3, Fig. 5).
//!
//! The schedule alternates between phase 0 ("blue" tiles) and phase 1
//! ("green" tiles). Within one time tile `T` all phase-0 tiles execute
//! first (in parallel across `S0`), then all phase-1 tiles. Phase 0 indexes
//! time through `t + h + 1` so that its hexagons straddle the boundary
//! between consecutive phase-1 rows; the `S0` numerators carry the
//! `T(⌊δ1h⌋ - ⌊δ0h⌋)` drift that keeps boxes of successive time tiles
//! aligned to the same shape.

use crate::hexagon::HexShape;

/// One of the two wavefront phases.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Phase {
    /// Phase 0 — executed first within a time tile (eqs. (2)–(3)).
    Zero,
    /// Phase 1 — executed second (eqs. (4)–(5)).
    One,
}

impl Phase {
    /// Both phases, in execution order.
    pub const ALL: [Phase; 2] = [Phase::Zero, Phase::One];

    /// The schedule value of the phase dimension `p`.
    pub fn index(self) -> i64 {
        match self {
            Phase::Zero => 0,
            Phase::One => 1,
        }
    }
}

/// Tile and local coordinates of one instance under one phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PhaseCoords {
    /// Time-tile index `T`.
    pub t_tile: i64,
    /// Hexagonal tile index `S0` within the wavefront.
    pub s_tile: i64,
    /// Local time coordinate `a ∈ [0, 2h+2)`.
    pub a: i64,
    /// Local space coordinate `b ∈ [0, box_width)`.
    pub b: i64,
}

/// Computes `(T, S0, a, b)` of the instance `(tau, s0)` under `phase`
/// (equations (2)/(3) for phase 0, (4)/(5) for phase 1). The instance
/// belongs to the tile only if `(a, b)` lies inside the hexagon.
pub fn coords(hex: &HexShape, phase: Phase, tau: i64, s0: i64) -> PhaseCoords {
    let height = hex.box_height();
    let width = hex.box_width();
    let drift = hex.f1() - hex.f0();
    // Note: the paper's eq. (3) writes the phase-0 spatial offset as
    // `⌊δ1h⌋ + w0 + 1`; with the hexagon anchored by the constraint system
    // (6)-(13) (whose rows start at b = ⌊δ0h⌋ on the top row), the offset
    // that makes the two phases interlock exactly is `⌊δ0h⌋ + w0 + 1`. The
    // two coincide for δ0 = δ1 (Fig. 6); the exhaustive partition tests
    // pin down this orientation for asymmetric cones.
    let (t_num, s_extra) = match phase {
        Phase::Zero => (tau + hex.h() + 1, hex.f0() + hex.w0() + 1),
        Phase::One => (tau, 0),
    };
    let t_tile = t_num.div_euclid(height);
    let a = t_num.rem_euclid(height);
    let s_num = s0 + s_extra + t_tile * drift;
    PhaseCoords {
        t_tile,
        s_tile: s_num.div_euclid(width),
        a,
        b: s_num.rem_euclid(width),
    }
}

/// All phases claiming the instance `(tau, s0)` — i.e. whose local
/// coordinates land inside the hexagon. A correct tiling claims every
/// instance exactly once; [`crate::verify`] checks this exhaustively.
pub fn claims(hex: &HexShape, tau: i64, s0: i64) -> Vec<(Phase, PhaseCoords)> {
    Phase::ALL
        .iter()
        .filter_map(|&p| {
            let c = coords(hex, p, tau, s0);
            hex.contains_local(c.a, c.b).then_some((p, c))
        })
        .collect()
}

/// The unique phase claiming `(tau, s0)`, or `None` if the tiling is
/// broken at that instance (zero or two claims).
pub fn locate(hex: &HexShape, tau: i64, s0: i64) -> Option<(Phase, PhaseCoords)> {
    let c = claims(hex, tau, s0);
    if c.len() == 1 {
        Some(c[0])
    } else {
        None
    }
}

/// Reconstructs the global `(tau, s0)` of a local hexagon point `(a, b)`
/// within tile `(phase, T, S0)` — the inverse of [`coords`].
pub fn to_global(
    hex: &HexShape,
    phase: Phase,
    t_tile: i64,
    s_tile: i64,
    a: i64,
    b: i64,
) -> (i64, i64) {
    let height = hex.box_height();
    let width = hex.box_width();
    let drift = hex.f1() - hex.f0();
    let (t_off, s_extra) = match phase {
        Phase::Zero => (hex.h() + 1, hex.f0() + hex.w0() + 1),
        Phase::One => (0, 0),
    };
    let tau = t_tile * height + a - t_off;
    let s0 = s_tile * width + b - s_extra - t_tile * drift;
    (tau, s0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polylib::Rat;

    fn unit_hex(h: i64, w0: i64) -> HexShape {
        HexShape::new(Rat::ONE, Rat::ONE, h, w0).unwrap()
    }

    #[test]
    fn coords_roundtrip_through_to_global() {
        let hex = unit_hex(2, 3);
        for tau in -5..15 {
            for s0 in -8..20 {
                for p in Phase::ALL {
                    let c = coords(&hex, p, tau, s0);
                    let (t2, s2) = to_global(&hex, p, c.t_tile, c.s_tile, c.a, c.b);
                    assert_eq!((t2, s2), (tau, s0), "phase {p:?}");
                }
            }
        }
    }

    #[test]
    fn every_instance_claimed_exactly_once() {
        for (h, w0) in [(0, 0), (0, 1), (1, 1), (2, 3), (3, 2)] {
            let hex = unit_hex(h, w0);
            for tau in 0..30 {
                for s0 in -20..40 {
                    let c = claims(&hex, tau, s0);
                    assert_eq!(
                        c.len(),
                        1,
                        "h={h} w0={w0}: ({tau},{s0}) claimed {} times",
                        c.len()
                    );
                }
            }
        }
    }

    #[test]
    fn asymmetric_slopes_partition_too() {
        // Fig. 4's example: δ0 = 1, δ1 = 2 (h=2, w0=3).
        let hex = HexShape::new(Rat::ONE, Rat::from(2), 2, 3).unwrap();
        for tau in 0..36 {
            for s0 in -30..60 {
                assert_eq!(claims(&hex, tau, s0).len(), 1, "({tau},{s0})");
            }
        }
    }

    #[test]
    fn fractional_slopes_partition() {
        // δ0 = 1/2, δ1 = 3/2 with h = 3: exercises non-trivial floors
        // f0 = 1, f1 = 4 and the (d-1)/d slack terms.
        let hex = HexShape::new(Rat::new(1, 2), Rat::new(3, 2), 3, 2).unwrap();
        for tau in 0..32 {
            for s0 in -25..50 {
                assert_eq!(claims(&hex, tau, s0).len(), 1, "({tau},{s0})");
            }
        }
    }

    #[test]
    fn phase0_precedes_phase1_on_straddled_rows() {
        // An instance at small tau lands in a phase-0 tile of the time tile
        // that *starts* later: phase-0 tiles straddle backwards.
        let hex = unit_hex(1, 1);
        // Phase-0 tile time window for T: [T*4 - 2, T*4 + 1].
        let c = coords(&hex, Phase::Zero, 2, 0);
        assert_eq!(c.t_tile, 1);
        let c = coords(&hex, Phase::One, 2, 0);
        assert_eq!(c.t_tile, 0);
    }

    #[test]
    fn wavefront_tiles_disjoint_in_s0() {
        // Two adjacent S0 tiles of the same phase never claim the same
        // instance (they are separated by the phase-complementary tiles).
        let hex = unit_hex(2, 2);
        for tau in 0..12 {
            for s0 in 0..40 {
                let cs = claims(&hex, tau, s0);
                assert_eq!(cs.len(), 1);
            }
        }
    }
}
