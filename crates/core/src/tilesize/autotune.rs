//! Tile-size autotuning (§6): sweep the `(h, w0, w1, ..)` space subject to
//! the shared-memory and register-file constraints, and rank the surviving
//! candidates by a measured score.
//!
//! The paper tunes tile sizes per benchmark by combining the static
//! load-to-compute model of §3.7 with the hardware resource limits of §6
//! (48 KB of shared memory and a 32 K-register file per SM on Fermi) and a
//! measurement pass over the remaining candidates. This module reproduces
//! that pipeline:
//!
//! 1. **enumerate** every parameter choice in a [`SearchSpace`] and
//!    evaluate the exact per-tile model ([`evaluate_tile`]);
//! 2. **prune** candidates whose shared-memory footprint or estimated
//!    register demand exceed the [`AutotuneConfig`] budgets;
//! 3. optionally **verify** each surviving schedule exhaustively on a
//!    small domain ([`crate::verify`]) — asserting the §3.3.3 properties
//!    the block-parallel simulator relies on (concurrent `S0` tiles are
//!    independent, so blocks of one launch never overlap writes);
//! 4. **score** candidates through a caller-supplied function and return
//!    the ranked table.
//!
//! The scorer is a plain closure because this crate sits below the
//! simulator in the dependency order: `hybrid_bench` plugs in a
//! `gpusim`-backed scorer (simulated GStencils/s on the device of
//! interest) and exposes the whole pipeline as the `autotune` binary.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use stencil::domain::ScheduledDomain;
use stencil::StencilProgram;

use crate::cancel::{CancelKind, CancelToken};
use crate::params::TileParams;
use crate::schedule::HybridSchedule;
use crate::tilesize::{evaluate_tile, SearchSpace, TileSizeModel};
use crate::verify::verify_schedule_storage;

/// Resource budgets and knobs for one autotuning run.
#[derive(Clone, Debug)]
pub struct AutotuneConfig {
    /// Shared-memory budget per block in bytes (§6: 48 KB on Fermi).
    pub smem_limit: u64,
    /// Register-file budget per block in 4-byte registers (§6: 32 K per
    /// SM on Fermi, with one resident block charged the full file —
    /// a conservative single-occupancy reading of the constraint).
    pub regs_per_block: u64,
    /// Exhaustively verify each surviving candidate's executable schedule
    /// on this `(dims, steps)` domain before scoring. `None` skips
    /// verification (the schedules are still constructed, just not
    /// point-checked).
    pub verify_domain: Option<(Vec<usize>, usize)>,
    /// Keep at most this many candidates (best static load-to-compute
    /// ratio first) for the verify/score stages.
    pub max_candidates: usize,
    /// Model-guided shortlist: score only the `top_k` candidates ranked
    /// best by the [`analytical_merit`] figure of merit. `0` disables the
    /// shortlist — every candidate surviving the budgets (and
    /// `max_candidates`) reaches the scorer, which preserves the
    /// exhaustive sweep as the oracle.
    pub top_k: usize,
    /// Fidelity scale of the successive-halving proxy round in `(0, 1]`.
    /// `1.0` disables the ladder entirely; anything below enables it.
    /// The value is advisory to the *scorer*: the sweep passes
    /// [`Fidelity::Proxy`] on the first round and the scorer is expected
    /// to shrink its grid/steps by this fraction (the sweep itself never
    /// simulates, so it only uses the value as the on/off switch).
    pub proxy_frac: f64,
    /// Fraction of proxy-scored candidates that survive to the
    /// full-fidelity round: `ceil(keep_frac * scored)`, clamped to
    /// `[1, scored]`. Only consulted when the ladder is enabled.
    pub keep_frac: f64,
}

impl AutotuneConfig {
    /// Fermi-class budgets (GTX 470 / NVS 5200M): 48 KB shared memory and
    /// a 32 K-register file, no candidate cap, no verification domain,
    /// no model-guided shortlist.
    pub fn fermi() -> AutotuneConfig {
        AutotuneConfig {
            smem_limit: 48 * 1024,
            regs_per_block: 32 * 1024,
            verify_domain: None,
            max_candidates: usize::MAX,
            top_k: 0,
            proxy_frac: 1.0,
            keep_frac: 0.5,
        }
    }
}

/// Which rung of the successive-halving ladder a scorer invocation sits
/// on. [`autotune_parallel_cancellable`] passes `Proxy` for the cheap
/// first round (the scorer should simulate a grid/step count scaled by
/// [`AutotuneConfig::proxy_frac`]) and `Full` for the final ranking round.
/// The sequential sweep only ever runs `Full`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fidelity {
    /// Reduced-size, reduced-steps estimate used to pick survivors.
    Proxy,
    /// Full-workload score; the only fidelity that enters the ranking.
    Full,
}

/// One scored candidate.
#[derive(Clone, Debug)]
pub struct AutotuneEntry {
    /// The static per-tile model (parameters, iteration/load counts,
    /// shared-memory footprint).
    pub model: TileSizeModel,
    /// The scorer's figure of merit; **higher is better** (simulator-backed
    /// scorers return GStencils/s).
    pub score: f64,
}

/// The outcome of an autotuning sweep: the ranked table plus where the
/// rest of the space went.
#[derive(Clone, Debug, Default)]
pub struct AutotuneReport {
    /// Scored candidates, best first (ties broken toward the lower static
    /// load-to-compute ratio).
    pub ranked: Vec<AutotuneEntry>,
    /// Parameter choices examined in total.
    pub examined: usize,
    /// Rejected: no hybrid schedule exists for the parameters.
    pub rejected_schedule: usize,
    /// Rejected: shared-memory footprint exceeds the budget.
    pub rejected_smem: usize,
    /// Rejected: estimated register demand exceeds the budget.
    pub rejected_regs: usize,
    /// Dropped by the `max_candidates` cap after static ranking.
    pub pruned: usize,
    /// Candidates that survived the budgets and (when `top_k > 0`) the
    /// model-guided shortlist — the population the scorer sees.
    pub shortlisted: usize,
    /// Scorer invocations actually performed (simulator runs under a
    /// simulator-backed scorer), across *both* fidelity rungs. Differs
    /// from `shortlisted` only when a cancellation stopped the sweep
    /// mid-scoring or the fidelity ladder dropped non-survivors.
    pub simulated: usize,
    /// Scorer invocations at [`Fidelity::Proxy`] (the cheap ladder round).
    /// Always `0` for the sequential sweep or with the ladder disabled.
    pub proxy_simulated: usize,
    /// Scorer invocations at [`Fidelity::Full`]. With the ladder disabled
    /// this equals `simulated`; with it enabled, only survivors pay one.
    pub full_simulated: usize,
    /// Rejected by the scorer (`None` — e.g. device limits at codegen).
    pub rejected_scorer: usize,
}

impl AutotuneReport {
    /// The winning candidate, if any survived.
    pub fn best(&self) -> Option<&AutotuneEntry> {
        self.ranked.first()
    }
}

/// A sweep that did not run to completion.
#[derive(Clone, Debug)]
pub enum AutotuneError {
    /// The sweep observed its [`CancelToken`] between candidates and
    /// stopped. `partial` holds everything scored before the check fired
    /// (ranked, so a caller that wants a best-effort plan can still take
    /// `partial.best()`).
    Cancelled {
        /// Deadline or explicit flag.
        kind: CancelKind,
        /// The report as of the cancellation point.
        partial: AutotuneReport,
    },
}

impl AutotuneError {
    /// The cancellation reason.
    pub fn kind(&self) -> CancelKind {
        match self {
            AutotuneError::Cancelled { kind, .. } => *kind,
        }
    }
}

impl fmt::Display for AutotuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutotuneError::Cancelled { kind, partial } => write!(
                f,
                "tuning sweep {}: {} candidate(s) examined, {} scored before the stop",
                match kind {
                    CancelKind::Deadline => "exceeded its deadline",
                    CancelKind::Flag => "was cancelled",
                },
                partial.examined,
                partial.ranked.len(),
            ),
        }
    }
}

impl std::error::Error for AutotuneError {}

/// Threads per block the hybrid code generator will use for `params`:
/// the product of the classical widths `w[1..]` (the innermost width maps
/// to `threadIdx.x`, the next to `threadIdx.y`), with a warp-size floor
/// for 1D programs whose block covers the hexagon bounding box.
pub fn estimated_threads_per_block(params: &TileParams) -> u64 {
    let classical: u64 = params.w[1..].iter().map(|&w| w as u64).product();
    if params.w.len() == 1 {
        32
    } else {
        classical
    }
}

/// Estimated registers per block: the generated kernels hold one `f32`
/// register per distinct load of the widest statement plus an accumulator
/// (`n_regs = max_loads + 1` in the code generator), and roughly eight
/// integer registers for addressing — times the block's thread count.
pub fn estimated_regs_per_block(program: &StencilProgram, params: &TileParams) -> u64 {
    let max_loads = program
        .statements()
        .iter()
        .map(|s| s.expr.loads().len() as u64)
        .max()
        .unwrap_or(0);
    (max_loads + 1 + 8) * estimated_threads_per_block(params)
}

/// Fermi's per-SM residency ceilings (§6 hardware limits): at most 8
/// resident blocks and 1536 resident threads per multiprocessor.
const MAX_RESIDENT_BLOCKS: u64 = 8;
const MAX_RESIDENT_THREADS: u64 = 1536;

/// The pure analytical figure of merit behind the model-guided shortlist
/// (`AutotuneConfig::top_k`): **occupancy × compute-to-load ratio**,
/// penalized by shared-memory and register pressure against the device
/// budgets. No simulation runs — everything comes from the static
/// [`TileSizeModel`] and the [`AutotuneConfig`] budgets, so ranking a
/// whole sweep space costs microseconds.
///
/// * *compute-to-load* (`iterations / steady_loads`) is the inverse of
///   the §3.7 ratio the paper minimizes: points computed per value
///   fetched from global memory — the DRAM-roof term.
/// * *occupancy* is the resident-thread fraction per SM implied by how
///   many blocks fit under the shared-memory and register budgets
///   (capped at Fermi's 8 blocks / 1536 threads): wide shallow tiles
///   with tiny footprints score close to 1, monster tiles that
///   serialize the SM score near `threads / 1536`. The merit uses its
///   **fourth root**: occupancy buys latency hiding with steeply
///   diminishing returns, and on a bandwidth-limited roofline device a
///   half-occupied SM already sustains close to peak DRAM throughput —
///   a linear term was observed to evict the simulator-best plan from
///   the shortlist on the multi-field and 3D gallery stencils.
/// * the *pressure penalty* discounts candidates sitting close to either
///   budget — those are the ones whose real kernels spill registers or
///   fail codegen-time shared-memory checks even though the static model
///   squeaked under the limit.
///
/// Higher is better. The merit is a *ranking* device, not a throughput
/// prediction: `autotune_cancellable` uses it to decide which candidates
/// deserve a (expensive, simulator-backed) scoring pass.
pub fn analytical_merit(
    program: &StencilProgram,
    model: &TileSizeModel,
    cfg: &AutotuneConfig,
) -> f64 {
    let threads = estimated_threads_per_block(&model.params);
    let regs = estimated_regs_per_block(program, &model.params);
    let smem_limit = cfg.smem_limit.max(1);
    let regs_limit = cfg.regs_per_block.max(1);

    let blocks_by_smem = smem_limit
        .checked_div(model.smem_bytes)
        .map_or(MAX_RESIDENT_BLOCKS, |b| b.min(MAX_RESIDENT_BLOCKS));
    let blocks_by_regs = regs_limit
        .checked_div(regs)
        .map_or(MAX_RESIDENT_BLOCKS, |b| b.min(MAX_RESIDENT_BLOCKS));
    let resident = blocks_by_smem.min(blocks_by_regs);
    let occupancy = ((resident * threads) as f64 / MAX_RESIDENT_THREADS as f64)
        .clamp(0.0, 1.0)
        .sqrt()
        .sqrt();

    let compute_per_load = if model.steady_loads == 0 {
        model.iterations as f64
    } else {
        model.iterations as f64 / model.steady_loads as f64
    };

    // Pressure against either budget in [0, 1]; candidates at > 100% of
    // a budget never reach this function (the prune stage rejects them).
    let smem_pressure = (model.smem_bytes as f64 / smem_limit as f64).clamp(0.0, 1.0);
    let reg_pressure = (regs as f64 / regs_limit as f64).clamp(0.0, 1.0);
    let penalty = 1.0 - 0.5 * smem_pressure.max(reg_pressure);

    occupancy * compute_per_load * penalty
}

/// Every parameter combination of the space, in deterministic sweep order
/// (also the enumeration behind [`crate::tilesize::select_tile_sizes`]).
pub(crate) fn combinations(space: &SearchSpace) -> Vec<(i64, Vec<i64>)> {
    let mut tails: Vec<Vec<i64>> = vec![vec![]];
    for cands in &space.wi {
        let mut next = Vec::new();
        for prefix in &tails {
            for &w in cands {
                let mut v = prefix.clone();
                v.push(w);
                next.push(v);
            }
        }
        tails = next;
    }
    let mut out = Vec::new();
    for &h in &space.h {
        for &w0 in &space.w0 {
            for tail in &tails {
                let mut w = vec![w0];
                w.extend_from_slice(tail);
                out.push((h, w));
            }
        }
    }
    out
}

/// Runs the sweep: enumerate, prune against `cfg`, statically rank,
/// optionally verify, then score with `scorer` and rank by score.
///
/// The scorer receives each surviving model and returns its figure of
/// merit (higher is better) or `None` to reject the candidate.
///
/// # Panics
///
/// Panics if a candidate schedule fails exhaustive verification on
/// `cfg.verify_domain` — a legal-looking candidate with an illegal
/// schedule is a construction bug, not an infeasible choice, and silently
/// dropping it would hide exactly the property the parallel simulator
/// depends on.
pub fn autotune<F>(
    program: &StencilProgram,
    space: &SearchSpace,
    cfg: &AutotuneConfig,
    scorer: F,
) -> AutotuneReport
where
    F: FnMut(&TileSizeModel) -> Option<f64>,
{
    match autotune_cancellable(program, space, cfg, &CancelToken::never(), scorer) {
        Ok(report) => report,
        // A never-token cannot fire; keep the partial report anyway
        // rather than panicking on an impossible branch.
        Err(AutotuneError::Cancelled { partial, .. }) => partial,
    }
}

/// [`autotune`] under a [`CancelToken`]: the sweep checks the token
/// between candidates (during enumeration, verification, and scoring)
/// and returns [`AutotuneError::Cancelled`] with the partial report when
/// it fires. Everything scored before the stop is ranked exactly as a
/// completed sweep would rank it.
///
/// # Errors
///
/// [`AutotuneError::Cancelled`] when the token fires mid-sweep.
///
/// # Panics
///
/// Like [`autotune`], panics if a candidate fails exhaustive schedule
/// verification on `cfg.verify_domain` (a construction bug, not an
/// infeasible choice).
pub fn autotune_cancellable<F>(
    program: &StencilProgram,
    space: &SearchSpace,
    cfg: &AutotuneConfig,
    cancel: &CancelToken,
    mut scorer: F,
) -> Result<AutotuneReport, AutotuneError>
where
    F: FnMut(&TileSizeModel) -> Option<f64>,
{
    let (mut report, feasible) = prepare_candidates(program, space, cfg, cancel)?;
    for model in feasible {
        if let Some(kind) = cancel.cancelled() {
            return stop(kind, report);
        }
        report.simulated += 1;
        report.full_simulated += 1;
        match scorer(&model) {
            Some(score) => report.ranked.push(AutotuneEntry { model, score }),
            None => report.rejected_scorer += 1,
        }
    }
    Ok(finish(report))
}

/// Final ranking: score descending, ties broken toward the lower static
/// load-to-compute ratio. The sort is stable, so candidates that tie on
/// both keys keep their static sweep order — the property that makes the
/// parallel sweep bit-identical to the sequential one.
fn finish(mut report: AutotuneReport) -> AutotuneReport {
    report.ranked.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.model.ratio().total_cmp(&b.model.ratio()))
    });
    report
}

fn stop(kind: CancelKind, report: AutotuneReport) -> Result<AutotuneReport, AutotuneError> {
    Err(AutotuneError::Cancelled {
        kind,
        partial: finish(report),
    })
}

/// The deterministic front half of every sweep: enumerate, prune against
/// the budgets, statically rank, apply `max_candidates` and the
/// model-guided shortlist, and (optionally) verify. Returns the report so
/// far plus the candidates the scorer will see, in static sweep order.
fn prepare_candidates(
    program: &StencilProgram,
    space: &SearchSpace,
    cfg: &AutotuneConfig,
    cancel: &CancelToken,
) -> Result<(AutotuneReport, Vec<TileSizeModel>), AutotuneError> {
    let mut report = AutotuneReport::default();
    let mut feasible: Vec<TileSizeModel> = Vec::new();

    for (h, w) in combinations(space) {
        if w.len() != program.spatial_dims() {
            continue;
        }
        if let Some(kind) = cancel.cancelled() {
            return Err(cancelled(kind, report));
        }
        report.examined += 1;
        let params = TileParams::new(h, &w);
        let Ok(model) = evaluate_tile(program, &params) else {
            report.rejected_schedule += 1;
            continue;
        };
        if model.smem_bytes > cfg.smem_limit {
            report.rejected_smem += 1;
            continue;
        }
        if estimated_regs_per_block(program, &params) > cfg.regs_per_block {
            report.rejected_regs += 1;
            continue;
        }
        feasible.push(model);
    }

    // Static pre-ranking: most promising load-to-compute ratio first, so
    // the candidate cap keeps the right ones.
    feasible.sort_by(|a, b| {
        a.ratio()
            .total_cmp(&b.ratio())
            .then(b.iterations.cmp(&a.iterations))
    });
    if feasible.len() > cfg.max_candidates {
        report.pruned = feasible.len() - cfg.max_candidates;
        feasible.truncate(cfg.max_candidates);
    }

    // Model-guided shortlist: rank the survivors by the analytical figure
    // of merit and keep only the best `top_k` for the expensive
    // verify/score stages. `top_k == 0` keeps everyone — the exhaustive
    // oracle the shortlist is validated against.
    if cfg.top_k > 0 && feasible.len() > cfg.top_k {
        let mut merited: Vec<(f64, TileSizeModel)> = feasible
            .drain(..)
            .map(|m| (analytical_merit(program, &m, cfg), m))
            .collect();
        merited.sort_by(|a, b| {
            b.0.total_cmp(&a.0)
                .then(a.1.ratio().total_cmp(&b.1.ratio()))
        });
        merited.truncate(cfg.top_k);
        feasible = merited.into_iter().map(|(_, m)| m).collect();
        // Restore the static sweep order so verification and scoring
        // proceed deterministically regardless of merit ties.
        feasible.sort_by(|a, b| {
            a.ratio()
                .total_cmp(&b.ratio())
                .then(b.iterations.cmp(&a.iterations))
        });
    }
    report.shortlisted = feasible.len();

    if let Some((dims, steps)) = &cfg.verify_domain {
        for model in &feasible {
            if let Some(kind) = cancel.cancelled() {
                return Err(cancelled(kind, report));
            }
            let schedule = HybridSchedule::compute_executable(program, &model.params)
                .expect("feasible candidate must have an executable schedule");
            let domain = ScheduledDomain::new(program, dims, *steps);
            verify_schedule_storage(&schedule, program, &domain).unwrap_or_else(|e| {
                panic!(
                    "candidate h={} w={:?} failed schedule verification: {e}",
                    model.params.h, model.params.w
                )
            });
        }
    }

    Ok((report, feasible))
}

fn cancelled(kind: CancelKind, report: AutotuneReport) -> AutotuneError {
    AutotuneError::Cancelled {
        kind,
        partial: finish(report),
    }
}

/// Splits a host thread budget between candidate-level workers and
/// per-candidate simulator threads: `workers × per_candidate ≤ budget`,
/// never oversubscribing the host. Candidate-level parallelism is
/// preferred — independent single-thread simulations beat one
/// merge-heavy parallel simulation — so `workers` saturates first
/// (capped by how many candidates there are to race) and only leftover
/// budget widens each simulation.
pub fn split_thread_budget(budget: usize, candidates: usize) -> (usize, usize) {
    let budget = budget.max(1);
    if candidates == 0 {
        return (1, budget);
    }
    let workers = budget.min(candidates);
    (workers, (budget / workers).max(1))
}

/// One fidelity rung of the racing sweep: score `models` through up to
/// `workers` pool threads, each claiming the next static index from a
/// shared counter and observing the [`CancelToken`] *between* candidate
/// pickups. Results land in per-index slots, so completion order never
/// influences anything downstream. Returns the per-index outcomes
/// (`None` = never attempted, `Some(None)` = scorer rejected,
/// `Some(Some(s))` = scored) plus the cancellation, if one fired.
///
/// A scorer panic is re-raised on the caller's thread with its original
/// payload (not `thread::scope`'s opaque "a scoped thread panicked"),
/// so batch drivers that contain per-file panics still see the message.
fn score_round<F>(
    models: &[TileSizeModel],
    fidelity: Fidelity,
    workers: usize,
    cancel: &CancelToken,
    scorer: &F,
) -> (Vec<Option<Option<f64>>>, Option<CancelKind>)
where
    F: Fn(&TileSizeModel, Fidelity) -> Option<f64> + Sync,
{
    let n = models.len();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Option<f64>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let stopped: Mutex<Option<CancelKind>> = Mutex::new(None);
    let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..workers.clamp(1, n.max(1)) {
            s.spawn(|| loop {
                if let Some(kind) = cancel.cancelled() {
                    stopped.lock().unwrap().get_or_insert(kind);
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    scorer(&models[i], fidelity)
                }));
                match attempt {
                    Ok(score) => *slots[i].lock().unwrap() = Some(score),
                    Err(payload) => {
                        panicked.lock().unwrap().get_or_insert(payload);
                        return;
                    }
                }
            });
        }
    });
    if let Some(payload) = panicked.into_inner().unwrap() {
        std::panic::resume_unwind(payload);
    }
    let results = slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap())
        .collect();
    (results, stopped.into_inner().unwrap())
}

/// [`autotune_cancellable`] with concurrent candidate scoring and an
/// optional successive-halving fidelity ladder.
///
/// Up to `workers` pool threads race independent candidates through the
/// (`Sync`) scorer; the ranking is **bit-identical** to the sequential
/// sweep's under a deterministic scorer because results are collected by
/// static rank — not completion order — and sorted with the same stable
/// comparator. Cancellation is observed between candidate pickups.
///
/// When `cfg.proxy_frac < 1.0` and more than one candidate survives the
/// shortlist, a proxy round first scores *every* candidate at
/// [`Fidelity::Proxy`] (the scorer is expected to shrink its workload by
/// `proxy_frac`); the best `ceil(keep_frac × scored)` candidates by proxy
/// score (ties broken by static rank) then pay a [`Fidelity::Full`]
/// scoring, and **only full-fidelity scores enter the ranking**.
/// Candidates the proxy scorer rejects (`None`) are dropped as
/// `rejected_scorer` without a full-fidelity attempt.
///
/// # Errors
///
/// [`AutotuneError::Cancelled`] when the token fires mid-sweep; the
/// partial report ranks everything that finished a full-fidelity scoring.
///
/// # Panics
///
/// Like [`autotune`], panics if a candidate fails exhaustive schedule
/// verification on `cfg.verify_domain`.
pub fn autotune_parallel_cancellable<F>(
    program: &StencilProgram,
    space: &SearchSpace,
    cfg: &AutotuneConfig,
    cancel: &CancelToken,
    workers: usize,
    scorer: F,
) -> Result<AutotuneReport, AutotuneError>
where
    F: Fn(&TileSizeModel, Fidelity) -> Option<f64> + Sync,
{
    let (mut report, feasible) = prepare_candidates(program, space, cfg, cancel)?;
    let workers = workers.max(1);

    // Proxy round: cheap estimates pick the survivors that deserve a
    // full-fidelity simulation. A single candidate skips the ladder —
    // it would pay a proxy run only to survive unconditionally.
    let pool: Vec<TileSizeModel> = if cfg.proxy_frac < 1.0 && feasible.len() > 1 {
        let (results, stopped) = score_round(&feasible, Fidelity::Proxy, workers, cancel, &scorer);
        let attempted = results.iter().filter(|r| r.is_some()).count();
        report.simulated += attempted;
        report.proxy_simulated += attempted;
        if let Some(kind) = stopped {
            return Err(cancelled(kind, report));
        }
        // Pair each candidate with its proxy score; `None` rejections
        // never reach the full round.
        let mut scored: Vec<(usize, f64, TileSizeModel)> = Vec::new();
        for (i, (model, result)) in feasible.into_iter().zip(results).enumerate() {
            match result.expect("uncancelled round attempts every candidate") {
                Some(s) => scored.push((i, s, model)),
                None => report.rejected_scorer += 1,
            }
        }
        let keep = if scored.is_empty() {
            0
        } else {
            ((cfg.keep_frac * scored.len() as f64).ceil() as usize).clamp(1, scored.len())
        };
        // Best proxy score first; ties broken by static rank so the
        // survivor set is deterministic. Then restore static order.
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(keep);
        scored.sort_by_key(|(i, _, _)| *i);
        scored.into_iter().map(|(_, _, m)| m).collect()
    } else {
        feasible
    };

    let (results, stopped) = score_round(&pool, Fidelity::Full, workers, cancel, &scorer);
    let attempted = results.iter().filter(|r| r.is_some()).count();
    report.simulated += attempted;
    report.full_simulated += attempted;
    for (model, result) in pool.into_iter().zip(results) {
        match result {
            Some(Some(score)) => report.ranked.push(AutotuneEntry { model, score }),
            Some(None) => report.rejected_scorer += 1,
            None => {} // cancelled before this candidate was picked up
        }
    }
    match stopped {
        Some(kind) => Err(cancelled(kind, report)),
        None => Ok(finish(report)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::gallery;

    fn small_space() -> SearchSpace {
        SearchSpace {
            h: vec![0, 1, 2],
            w0: vec![1, 3],
            wi: vec![vec![8, 16]],
        }
    }

    #[test]
    fn ranking_follows_scorer() {
        // A scorer preferring tall tiles must rank a taller h first.
        let p = gallery::jacobi2d();
        let report = autotune(&p, &small_space(), &AutotuneConfig::fermi(), |m| {
            Some(m.params.h as f64)
        });
        assert!(!report.ranked.is_empty());
        let best = report.best().unwrap();
        assert_eq!(best.model.params.h, 2);
        assert!(report.ranked.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn budgets_prune_candidates() {
        let p = gallery::jacobi2d();
        let all = autotune(&p, &small_space(), &AutotuneConfig::fermi(), |_| Some(1.0));
        // A budget strictly between the smallest and largest feasible
        // footprint must reject some candidates and keep others.
        let min = all.ranked.iter().map(|e| e.model.smem_bytes).min().unwrap();
        let max = all.ranked.iter().map(|e| e.model.smem_bytes).max().unwrap();
        assert!(min < max, "space too uniform for a pruning test");
        let tight = AutotuneConfig {
            smem_limit: (min + max) / 2,
            ..AutotuneConfig::fermi()
        };
        let pruned = autotune(&p, &small_space(), &tight, |_| Some(1.0));
        assert!(pruned.rejected_smem > 0);
        assert!(pruned.ranked.len() < all.ranked.len());
        assert_eq!(
            pruned.examined,
            pruned.ranked.len()
                + pruned.rejected_schedule
                + pruned.rejected_smem
                + pruned.rejected_regs
                + pruned.rejected_scorer
        );
    }

    #[test]
    fn register_budget_rejects_wide_blocks() {
        let p = gallery::jacobi2d();
        let cfg = AutotuneConfig {
            // jacobi2d: (5 loads + 1 + 8) * 16 threads = 224 regs; budget
            // below that rejects every w1 = 16 candidate.
            regs_per_block: 200,
            ..AutotuneConfig::fermi()
        };
        let report = autotune(&p, &small_space(), &cfg, |_| Some(1.0));
        assert!(report.rejected_regs > 0);
        assert!(report
            .ranked
            .iter()
            .all(|e| estimated_regs_per_block(&p, &e.model.params) <= 200));
    }

    #[test]
    fn max_candidates_caps_scoring() {
        let p = gallery::jacobi2d();
        let mut scored = 0usize;
        let cfg = AutotuneConfig {
            max_candidates: 3,
            ..AutotuneConfig::fermi()
        };
        let report = autotune(&p, &small_space(), &cfg, |_| {
            scored += 1;
            Some(1.0)
        });
        assert_eq!(scored, 3);
        assert_eq!(report.ranked.len(), 3);
        assert!(report.pruned > 0);
    }

    #[test]
    fn verified_sweep_passes_for_gallery_program() {
        let p = gallery::jacobi2d();
        let cfg = AutotuneConfig {
            verify_domain: Some((vec![14, 12], 6)),
            max_candidates: 4,
            ..AutotuneConfig::fermi()
        };
        let report = autotune(&p, &cfg_space(), &cfg, |m| Some(1.0 / (1.0 + m.ratio())));
        assert!(!report.ranked.is_empty());
    }

    fn cfg_space() -> SearchSpace {
        SearchSpace {
            h: vec![1, 2],
            w0: vec![1, 3],
            wi: vec![vec![8]],
        }
    }

    #[test]
    fn cancelled_sweep_returns_ranked_partial_result() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let p = gallery::jacobi2d();
        let flag = Arc::new(AtomicBool::new(false));
        let token = CancelToken::with_flag(flag.clone());
        let mut scored = 0usize;
        // The scorer raises the flag after its first call: the sweep must
        // observe it before the second candidate is scored.
        let result =
            autotune_cancellable(&p, &small_space(), &AutotuneConfig::fermi(), &token, |m| {
                scored += 1;
                flag.store(true, Ordering::SeqCst);
                Some(m.params.h as f64)
            });
        assert_eq!(scored, 1, "cancellation must stop between candidates");
        match result {
            Err(AutotuneError::Cancelled { kind, partial }) => {
                assert_eq!(kind, CancelKind::Flag);
                assert_eq!(partial.ranked.len(), 1);
                assert!(partial.best().is_some());
                let msg = AutotuneError::Cancelled { kind, partial }.to_string();
                assert!(msg.contains("was cancelled"), "{msg}");
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_cancels_before_any_scoring() {
        let p = gallery::jacobi2d();
        let token = CancelToken::with_timeout(std::time::Duration::ZERO);
        let result = autotune_cancellable(
            &p,
            &small_space(),
            &AutotuneConfig::fermi(),
            &token,
            |_| -> Option<f64> { panic!("scorer must not run past an expired deadline") },
        );
        match result {
            Err(AutotuneError::Cancelled { kind, partial }) => {
                assert_eq!(kind, CancelKind::Deadline);
                assert!(partial.ranked.is_empty());
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn never_token_matches_plain_autotune() {
        let p = gallery::jacobi2d();
        let plain = autotune(&p, &small_space(), &AutotuneConfig::fermi(), |m| {
            Some(-m.ratio())
        });
        let via_token = autotune_cancellable(
            &p,
            &small_space(),
            &AutotuneConfig::fermi(),
            &CancelToken::never(),
            |m| Some(-m.ratio()),
        )
        .unwrap();
        assert_eq!(plain.examined, via_token.examined);
        assert_eq!(plain.ranked.len(), via_token.ranked.len());
        assert_eq!(
            plain.best().map(|e| e.model.params.clone()),
            via_token.best().map(|e| e.model.params.clone())
        );
    }

    #[test]
    fn top_k_shortlist_caps_scorer_invocations() {
        let p = gallery::jacobi2d();
        let mut scored = 0usize;
        let cfg = AutotuneConfig {
            top_k: 2,
            ..AutotuneConfig::fermi()
        };
        let report = autotune(&p, &small_space(), &cfg, |m| {
            scored += 1;
            Some(-m.ratio())
        });
        assert_eq!(scored, 2, "only the shortlist reaches the scorer");
        assert_eq!(report.shortlisted, 2);
        assert_eq!(report.simulated, 2);
        assert_eq!(report.ranked.len(), 2);
        // The shortlist discards candidates without counting them as
        // budget rejections or max_candidates pruning.
        assert_eq!(report.pruned, 0);
    }

    #[test]
    fn top_k_zero_preserves_the_exhaustive_oracle() {
        let p = gallery::jacobi2d();
        let exhaustive = autotune(&p, &small_space(), &AutotuneConfig::fermi(), |m| {
            Some(-m.ratio())
        });
        assert_eq!(exhaustive.shortlisted, exhaustive.simulated);
        assert_eq!(exhaustive.simulated, exhaustive.ranked.len());
        // A top_k at least as large as the feasible set is also exhaustive.
        let wide = AutotuneConfig {
            top_k: exhaustive.shortlisted,
            ..AutotuneConfig::fermi()
        };
        let via_k = autotune(&p, &small_space(), &wide, |m| Some(-m.ratio()));
        assert_eq!(via_k.simulated, exhaustive.simulated);
        assert_eq!(
            via_k.best().map(|e| e.model.params.clone()),
            exhaustive.best().map(|e| e.model.params.clone())
        );
    }

    #[test]
    fn merit_is_deterministic_and_positive_for_feasible_candidates() {
        let p = gallery::jacobi2d();
        let cfg = AutotuneConfig::fermi();
        let report = autotune(&p, &small_space(), &cfg, |_| Some(1.0));
        assert!(!report.ranked.is_empty());
        for entry in &report.ranked {
            let m1 = analytical_merit(&p, &entry.model, &cfg);
            let m2 = analytical_merit(&p, &entry.model, &cfg);
            assert!(
                m1.is_finite() && m1 > 0.0,
                "merit {m1} for {:?}",
                entry.model.params
            );
            assert_eq!(m1.to_bits(), m2.to_bits(), "merit must be deterministic");
        }
    }

    #[test]
    fn shortlist_retains_a_high_merit_candidate() {
        // The top-1 shortlist must keep exactly the merit argmax.
        let p = gallery::jacobi2d();
        let cfg = AutotuneConfig {
            top_k: 1,
            ..AutotuneConfig::fermi()
        };
        let exhaustive = autotune(&p, &small_space(), &AutotuneConfig::fermi(), |_| Some(1.0));
        let best_by_merit = exhaustive
            .ranked
            .iter()
            .map(|e| &e.model)
            .max_by(|a, b| {
                analytical_merit(&p, a, &cfg)
                    .total_cmp(&analytical_merit(&p, b, &cfg))
                    .then(b.ratio().total_cmp(&a.ratio()))
            })
            .unwrap();
        let short = autotune(&p, &small_space(), &cfg, |_| Some(1.0));
        assert_eq!(short.ranked.len(), 1);
        assert_eq!(short.ranked[0].model.params, best_by_merit.params);
    }

    /// A deterministic scorer both sweeps can share: prefers low ratio,
    /// perturbed by the tile height so ties are broken interestingly.
    fn det_score(m: &TileSizeModel) -> Option<f64> {
        Some(-m.ratio() + 0.001 * m.params.h as f64)
    }

    fn assert_reports_identical(seq: &AutotuneReport, par: &AutotuneReport) {
        assert_eq!(seq.examined, par.examined);
        assert_eq!(seq.rejected_schedule, par.rejected_schedule);
        assert_eq!(seq.rejected_smem, par.rejected_smem);
        assert_eq!(seq.rejected_regs, par.rejected_regs);
        assert_eq!(seq.pruned, par.pruned);
        assert_eq!(seq.shortlisted, par.shortlisted);
        assert_eq!(seq.simulated, par.simulated);
        assert_eq!(seq.proxy_simulated, par.proxy_simulated);
        assert_eq!(seq.full_simulated, par.full_simulated);
        assert_eq!(seq.rejected_scorer, par.rejected_scorer);
        assert_eq!(seq.ranked.len(), par.ranked.len());
        for (a, b) in seq.ranked.iter().zip(&par.ranked) {
            assert_eq!(a.model.params, b.model.params);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential() {
        let p = gallery::jacobi2d();
        let cfg = AutotuneConfig::fermi();
        let seq = autotune_cancellable(&p, &small_space(), &cfg, &CancelToken::never(), det_score)
            .unwrap();
        assert_eq!(seq.proxy_simulated, 0);
        assert_eq!(seq.full_simulated, seq.simulated);
        for workers in [1, 2, 8] {
            let par = autotune_parallel_cancellable(
                &p,
                &small_space(),
                &cfg,
                &CancelToken::never(),
                workers,
                |m, _| det_score(m),
            )
            .unwrap();
            assert_reports_identical(&seq, &par);
        }
    }

    #[test]
    fn fidelity_ladder_pays_fewer_full_simulations() {
        let p = gallery::jacobi2d();
        let cfg = AutotuneConfig {
            proxy_frac: 0.5,
            keep_frac: 0.4,
            ..AutotuneConfig::fermi()
        };
        let par = autotune_parallel_cancellable(
            &p,
            &small_space(),
            &cfg,
            &CancelToken::never(),
            2,
            |m, _| det_score(m),
        )
        .unwrap();
        let n = par.shortlisted;
        assert!(n > 1, "space too small for a ladder test");
        assert_eq!(par.proxy_simulated, n, "proxy round scores everyone");
        let keep = ((0.4 * n as f64).ceil() as usize).clamp(1, n);
        assert_eq!(par.full_simulated, keep, "only survivors pay full price");
        assert_eq!(par.simulated, n + keep);
        assert_eq!(par.ranked.len(), keep);
        // The proxy scorer here equals the full one, so the ladder keeps
        // the true winner: the final best matches the exhaustive sweep's.
        let seq = autotune(&p, &small_space(), &AutotuneConfig::fermi(), det_score);
        assert_eq!(
            par.best().map(|e| e.model.params.clone()),
            seq.best().map(|e| e.model.params.clone())
        );
    }

    #[test]
    fn proxy_survivors_are_chosen_by_proxy_score_with_static_tie_break() {
        // A proxy scorer that inverts the full scorer demotes the true
        // winner out of a keep_frac-sized survivor set: the ladder must
        // rank only survivors, proving full scores alone enter the
        // ranking and survivors come from the proxy round.
        let p = gallery::jacobi2d();
        let cfg = AutotuneConfig {
            proxy_frac: 0.5,
            keep_frac: 0.25,
            ..AutotuneConfig::fermi()
        };
        let par = autotune_parallel_cancellable(
            &p,
            &small_space(),
            &cfg,
            &CancelToken::never(),
            4,
            |m, fidelity| match fidelity {
                Fidelity::Proxy => det_score(m).map(|s| -s),
                Fidelity::Full => det_score(m),
            },
        )
        .unwrap();
        let seq = autotune(&p, &small_space(), &AutotuneConfig::fermi(), det_score);
        assert!(!par.ranked.is_empty());
        assert_ne!(
            par.best().map(|e| e.model.params.clone()),
            seq.best().map(|e| e.model.params.clone()),
            "an adversarial proxy must be able to evict the true winner"
        );
    }

    #[test]
    fn parallel_cancellation_stops_between_pickups() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let p = gallery::jacobi2d();
        let flag = Arc::new(AtomicBool::new(false));
        let token = CancelToken::with_flag(flag.clone());
        let scored = AtomicUsize::new(0);
        // One worker raises the flag from inside the first scoring: no
        // second candidate may be picked up afterwards.
        let result = autotune_parallel_cancellable(
            &p,
            &small_space(),
            &AutotuneConfig::fermi(),
            &token,
            1,
            |m, _| {
                scored.fetch_add(1, Ordering::SeqCst);
                flag.store(true, Ordering::SeqCst);
                Some(m.params.h as f64)
            },
        );
        assert_eq!(scored.load(Ordering::SeqCst), 1);
        match result {
            Err(AutotuneError::Cancelled { kind, partial }) => {
                assert_eq!(kind, CancelKind::Flag);
                assert_eq!(partial.ranked.len(), 1);
                assert_eq!(partial.simulated, 1);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn thread_budget_splitter_never_oversubscribes() {
        // Candidate-level parallelism saturates first.
        assert_eq!(split_thread_budget(8, 20), (8, 1));
        // Leftover budget widens each simulation.
        assert_eq!(split_thread_budget(8, 2), (2, 4));
        assert_eq!(split_thread_budget(7, 2), (2, 3));
        // Degenerate inputs stay sane.
        assert_eq!(split_thread_budget(0, 5), (1, 1));
        assert_eq!(split_thread_budget(4, 0), (1, 4));
        assert_eq!(split_thread_budget(1, 1), (1, 1));
        for budget in 1..32 {
            for candidates in 0..32 {
                let (w, per) = split_thread_budget(budget, candidates);
                assert!(w * per <= budget.max(1), "({budget},{candidates})");
                assert!(w >= 1 && per >= 1);
            }
        }
    }

    #[test]
    fn thread_estimate_matches_block_shape() {
        // 2D: block x = w1; 3D: x = w2, y = w1.
        assert_eq!(
            estimated_threads_per_block(&TileParams::new(2, &[3, 32])),
            32
        );
        assert_eq!(
            estimated_threads_per_block(&TileParams::new(1, &[2, 4, 32])),
            128
        );
        assert_eq!(estimated_threads_per_block(&TileParams::new(2, &[3])), 32);
    }
}
