//! Tile-size autotuning (§6): sweep the `(h, w0, w1, ..)` space subject to
//! the shared-memory and register-file constraints, and rank the surviving
//! candidates by a measured score.
//!
//! The paper tunes tile sizes per benchmark by combining the static
//! load-to-compute model of §3.7 with the hardware resource limits of §6
//! (48 KB of shared memory and a 32 K-register file per SM on Fermi) and a
//! measurement pass over the remaining candidates. This module reproduces
//! that pipeline:
//!
//! 1. **enumerate** every parameter choice in a [`SearchSpace`] and
//!    evaluate the exact per-tile model ([`evaluate_tile`]);
//! 2. **prune** candidates whose shared-memory footprint or estimated
//!    register demand exceed the [`AutotuneConfig`] budgets;
//! 3. optionally **verify** each surviving schedule exhaustively on a
//!    small domain ([`crate::verify`]) — asserting the §3.3.3 properties
//!    the block-parallel simulator relies on (concurrent `S0` tiles are
//!    independent, so blocks of one launch never overlap writes);
//! 4. **score** candidates through a caller-supplied function and return
//!    the ranked table.
//!
//! The scorer is a plain closure because this crate sits below the
//! simulator in the dependency order: `hybrid_bench` plugs in a
//! `gpusim`-backed scorer (simulated GStencils/s on the device of
//! interest) and exposes the whole pipeline as the `autotune` binary.

use std::fmt;

use stencil::domain::ScheduledDomain;
use stencil::StencilProgram;

use crate::cancel::{CancelKind, CancelToken};
use crate::params::TileParams;
use crate::schedule::HybridSchedule;
use crate::tilesize::{evaluate_tile, SearchSpace, TileSizeModel};
use crate::verify::verify_schedule_storage;

/// Resource budgets and knobs for one autotuning run.
#[derive(Clone, Debug)]
pub struct AutotuneConfig {
    /// Shared-memory budget per block in bytes (§6: 48 KB on Fermi).
    pub smem_limit: u64,
    /// Register-file budget per block in 4-byte registers (§6: 32 K per
    /// SM on Fermi, with one resident block charged the full file —
    /// a conservative single-occupancy reading of the constraint).
    pub regs_per_block: u64,
    /// Exhaustively verify each surviving candidate's executable schedule
    /// on this `(dims, steps)` domain before scoring. `None` skips
    /// verification (the schedules are still constructed, just not
    /// point-checked).
    pub verify_domain: Option<(Vec<usize>, usize)>,
    /// Keep at most this many candidates (best static load-to-compute
    /// ratio first) for the verify/score stages.
    pub max_candidates: usize,
    /// Model-guided shortlist: score only the `top_k` candidates ranked
    /// best by the [`analytical_merit`] figure of merit. `0` disables the
    /// shortlist — every candidate surviving the budgets (and
    /// `max_candidates`) reaches the scorer, which preserves the
    /// exhaustive sweep as the oracle.
    pub top_k: usize,
}

impl AutotuneConfig {
    /// Fermi-class budgets (GTX 470 / NVS 5200M): 48 KB shared memory and
    /// a 32 K-register file, no candidate cap, no verification domain,
    /// no model-guided shortlist.
    pub fn fermi() -> AutotuneConfig {
        AutotuneConfig {
            smem_limit: 48 * 1024,
            regs_per_block: 32 * 1024,
            verify_domain: None,
            max_candidates: usize::MAX,
            top_k: 0,
        }
    }
}

/// One scored candidate.
#[derive(Clone, Debug)]
pub struct AutotuneEntry {
    /// The static per-tile model (parameters, iteration/load counts,
    /// shared-memory footprint).
    pub model: TileSizeModel,
    /// The scorer's figure of merit; **higher is better** (simulator-backed
    /// scorers return GStencils/s).
    pub score: f64,
}

/// The outcome of an autotuning sweep: the ranked table plus where the
/// rest of the space went.
#[derive(Clone, Debug, Default)]
pub struct AutotuneReport {
    /// Scored candidates, best first (ties broken toward the lower static
    /// load-to-compute ratio).
    pub ranked: Vec<AutotuneEntry>,
    /// Parameter choices examined in total.
    pub examined: usize,
    /// Rejected: no hybrid schedule exists for the parameters.
    pub rejected_schedule: usize,
    /// Rejected: shared-memory footprint exceeds the budget.
    pub rejected_smem: usize,
    /// Rejected: estimated register demand exceeds the budget.
    pub rejected_regs: usize,
    /// Dropped by the `max_candidates` cap after static ranking.
    pub pruned: usize,
    /// Candidates that survived the budgets and (when `top_k > 0`) the
    /// model-guided shortlist — the population the scorer sees.
    pub shortlisted: usize,
    /// Scorer invocations actually performed (simulator runs under a
    /// simulator-backed scorer). Differs from `shortlisted` only when a
    /// cancellation stopped the sweep mid-scoring.
    pub simulated: usize,
    /// Rejected by the scorer (`None` — e.g. device limits at codegen).
    pub rejected_scorer: usize,
}

impl AutotuneReport {
    /// The winning candidate, if any survived.
    pub fn best(&self) -> Option<&AutotuneEntry> {
        self.ranked.first()
    }
}

/// A sweep that did not run to completion.
#[derive(Clone, Debug)]
pub enum AutotuneError {
    /// The sweep observed its [`CancelToken`] between candidates and
    /// stopped. `partial` holds everything scored before the check fired
    /// (ranked, so a caller that wants a best-effort plan can still take
    /// `partial.best()`).
    Cancelled {
        /// Deadline or explicit flag.
        kind: CancelKind,
        /// The report as of the cancellation point.
        partial: AutotuneReport,
    },
}

impl AutotuneError {
    /// The cancellation reason.
    pub fn kind(&self) -> CancelKind {
        match self {
            AutotuneError::Cancelled { kind, .. } => *kind,
        }
    }
}

impl fmt::Display for AutotuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutotuneError::Cancelled { kind, partial } => write!(
                f,
                "tuning sweep {}: {} candidate(s) examined, {} scored before the stop",
                match kind {
                    CancelKind::Deadline => "exceeded its deadline",
                    CancelKind::Flag => "was cancelled",
                },
                partial.examined,
                partial.ranked.len(),
            ),
        }
    }
}

impl std::error::Error for AutotuneError {}

/// Threads per block the hybrid code generator will use for `params`:
/// the product of the classical widths `w[1..]` (the innermost width maps
/// to `threadIdx.x`, the next to `threadIdx.y`), with a warp-size floor
/// for 1D programs whose block covers the hexagon bounding box.
pub fn estimated_threads_per_block(params: &TileParams) -> u64 {
    let classical: u64 = params.w[1..].iter().map(|&w| w as u64).product();
    if params.w.len() == 1 {
        32
    } else {
        classical
    }
}

/// Estimated registers per block: the generated kernels hold one `f32`
/// register per distinct load of the widest statement plus an accumulator
/// (`n_regs = max_loads + 1` in the code generator), and roughly eight
/// integer registers for addressing — times the block's thread count.
pub fn estimated_regs_per_block(program: &StencilProgram, params: &TileParams) -> u64 {
    let max_loads = program
        .statements()
        .iter()
        .map(|s| s.expr.loads().len() as u64)
        .max()
        .unwrap_or(0);
    (max_loads + 1 + 8) * estimated_threads_per_block(params)
}

/// Fermi's per-SM residency ceilings (§6 hardware limits): at most 8
/// resident blocks and 1536 resident threads per multiprocessor.
const MAX_RESIDENT_BLOCKS: u64 = 8;
const MAX_RESIDENT_THREADS: u64 = 1536;

/// The pure analytical figure of merit behind the model-guided shortlist
/// (`AutotuneConfig::top_k`): **occupancy × compute-to-load ratio**,
/// penalized by shared-memory and register pressure against the device
/// budgets. No simulation runs — everything comes from the static
/// [`TileSizeModel`] and the [`AutotuneConfig`] budgets, so ranking a
/// whole sweep space costs microseconds.
///
/// * *compute-to-load* (`iterations / steady_loads`) is the inverse of
///   the §3.7 ratio the paper minimizes: points computed per value
///   fetched from global memory — the DRAM-roof term.
/// * *occupancy* is the resident-thread fraction per SM implied by how
///   many blocks fit under the shared-memory and register budgets
///   (capped at Fermi's 8 blocks / 1536 threads): wide shallow tiles
///   with tiny footprints score close to 1, monster tiles that
///   serialize the SM score near `threads / 1536`. The merit uses its
///   **fourth root**: occupancy buys latency hiding with steeply
///   diminishing returns, and on a bandwidth-limited roofline device a
///   half-occupied SM already sustains close to peak DRAM throughput —
///   a linear term was observed to evict the simulator-best plan from
///   the shortlist on the multi-field and 3D gallery stencils.
/// * the *pressure penalty* discounts candidates sitting close to either
///   budget — those are the ones whose real kernels spill registers or
///   fail codegen-time shared-memory checks even though the static model
///   squeaked under the limit.
///
/// Higher is better. The merit is a *ranking* device, not a throughput
/// prediction: `autotune_cancellable` uses it to decide which candidates
/// deserve a (expensive, simulator-backed) scoring pass.
pub fn analytical_merit(
    program: &StencilProgram,
    model: &TileSizeModel,
    cfg: &AutotuneConfig,
) -> f64 {
    let threads = estimated_threads_per_block(&model.params);
    let regs = estimated_regs_per_block(program, &model.params);
    let smem_limit = cfg.smem_limit.max(1);
    let regs_limit = cfg.regs_per_block.max(1);

    let blocks_by_smem = smem_limit
        .checked_div(model.smem_bytes)
        .map_or(MAX_RESIDENT_BLOCKS, |b| b.min(MAX_RESIDENT_BLOCKS));
    let blocks_by_regs = regs_limit
        .checked_div(regs)
        .map_or(MAX_RESIDENT_BLOCKS, |b| b.min(MAX_RESIDENT_BLOCKS));
    let resident = blocks_by_smem.min(blocks_by_regs);
    let occupancy = ((resident * threads) as f64 / MAX_RESIDENT_THREADS as f64)
        .clamp(0.0, 1.0)
        .sqrt()
        .sqrt();

    let compute_per_load = if model.steady_loads == 0 {
        model.iterations as f64
    } else {
        model.iterations as f64 / model.steady_loads as f64
    };

    // Pressure against either budget in [0, 1]; candidates at > 100% of
    // a budget never reach this function (the prune stage rejects them).
    let smem_pressure = (model.smem_bytes as f64 / smem_limit as f64).clamp(0.0, 1.0);
    let reg_pressure = (regs as f64 / regs_limit as f64).clamp(0.0, 1.0);
    let penalty = 1.0 - 0.5 * smem_pressure.max(reg_pressure);

    occupancy * compute_per_load * penalty
}

/// Every parameter combination of the space, in deterministic sweep order
/// (also the enumeration behind [`crate::tilesize::select_tile_sizes`]).
pub(crate) fn combinations(space: &SearchSpace) -> Vec<(i64, Vec<i64>)> {
    let mut tails: Vec<Vec<i64>> = vec![vec![]];
    for cands in &space.wi {
        let mut next = Vec::new();
        for prefix in &tails {
            for &w in cands {
                let mut v = prefix.clone();
                v.push(w);
                next.push(v);
            }
        }
        tails = next;
    }
    let mut out = Vec::new();
    for &h in &space.h {
        for &w0 in &space.w0 {
            for tail in &tails {
                let mut w = vec![w0];
                w.extend_from_slice(tail);
                out.push((h, w));
            }
        }
    }
    out
}

/// Runs the sweep: enumerate, prune against `cfg`, statically rank,
/// optionally verify, then score with `scorer` and rank by score.
///
/// The scorer receives each surviving model and returns its figure of
/// merit (higher is better) or `None` to reject the candidate.
///
/// # Panics
///
/// Panics if a candidate schedule fails exhaustive verification on
/// `cfg.verify_domain` — a legal-looking candidate with an illegal
/// schedule is a construction bug, not an infeasible choice, and silently
/// dropping it would hide exactly the property the parallel simulator
/// depends on.
pub fn autotune<F>(
    program: &StencilProgram,
    space: &SearchSpace,
    cfg: &AutotuneConfig,
    scorer: F,
) -> AutotuneReport
where
    F: FnMut(&TileSizeModel) -> Option<f64>,
{
    match autotune_cancellable(program, space, cfg, &CancelToken::never(), scorer) {
        Ok(report) => report,
        // A never-token cannot fire; keep the partial report anyway
        // rather than panicking on an impossible branch.
        Err(AutotuneError::Cancelled { partial, .. }) => partial,
    }
}

/// [`autotune`] under a [`CancelToken`]: the sweep checks the token
/// between candidates (during enumeration, verification, and scoring)
/// and returns [`AutotuneError::Cancelled`] with the partial report when
/// it fires. Everything scored before the stop is ranked exactly as a
/// completed sweep would rank it.
///
/// # Errors
///
/// [`AutotuneError::Cancelled`] when the token fires mid-sweep.
///
/// # Panics
///
/// Like [`autotune`], panics if a candidate fails exhaustive schedule
/// verification on `cfg.verify_domain` (a construction bug, not an
/// infeasible choice).
pub fn autotune_cancellable<F>(
    program: &StencilProgram,
    space: &SearchSpace,
    cfg: &AutotuneConfig,
    cancel: &CancelToken,
    mut scorer: F,
) -> Result<AutotuneReport, AutotuneError>
where
    F: FnMut(&TileSizeModel) -> Option<f64>,
{
    let mut report = AutotuneReport::default();
    let mut feasible: Vec<TileSizeModel> = Vec::new();

    let finish = |mut report: AutotuneReport| {
        report.ranked.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.model.ratio().total_cmp(&b.model.ratio()))
        });
        report
    };
    let stop = |kind: CancelKind, report: AutotuneReport| {
        Err(AutotuneError::Cancelled {
            kind,
            partial: finish(report),
        })
    };

    for (h, w) in combinations(space) {
        if w.len() != program.spatial_dims() {
            continue;
        }
        if let Some(kind) = cancel.cancelled() {
            return stop(kind, report);
        }
        report.examined += 1;
        let params = TileParams::new(h, &w);
        let Ok(model) = evaluate_tile(program, &params) else {
            report.rejected_schedule += 1;
            continue;
        };
        if model.smem_bytes > cfg.smem_limit {
            report.rejected_smem += 1;
            continue;
        }
        if estimated_regs_per_block(program, &params) > cfg.regs_per_block {
            report.rejected_regs += 1;
            continue;
        }
        feasible.push(model);
    }

    // Static pre-ranking: most promising load-to-compute ratio first, so
    // the candidate cap keeps the right ones.
    feasible.sort_by(|a, b| {
        a.ratio()
            .total_cmp(&b.ratio())
            .then(b.iterations.cmp(&a.iterations))
    });
    if feasible.len() > cfg.max_candidates {
        report.pruned = feasible.len() - cfg.max_candidates;
        feasible.truncate(cfg.max_candidates);
    }

    // Model-guided shortlist: rank the survivors by the analytical figure
    // of merit and keep only the best `top_k` for the expensive
    // verify/score stages. `top_k == 0` keeps everyone — the exhaustive
    // oracle the shortlist is validated against.
    if cfg.top_k > 0 && feasible.len() > cfg.top_k {
        let mut merited: Vec<(f64, TileSizeModel)> = feasible
            .drain(..)
            .map(|m| (analytical_merit(program, &m, cfg), m))
            .collect();
        merited.sort_by(|a, b| {
            b.0.total_cmp(&a.0)
                .then(a.1.ratio().total_cmp(&b.1.ratio()))
        });
        merited.truncate(cfg.top_k);
        feasible = merited.into_iter().map(|(_, m)| m).collect();
        // Restore the static sweep order so verification and scoring
        // proceed deterministically regardless of merit ties.
        feasible.sort_by(|a, b| {
            a.ratio()
                .total_cmp(&b.ratio())
                .then(b.iterations.cmp(&a.iterations))
        });
    }
    report.shortlisted = feasible.len();

    if let Some((dims, steps)) = &cfg.verify_domain {
        for model in &feasible {
            if let Some(kind) = cancel.cancelled() {
                return stop(kind, report);
            }
            let schedule = HybridSchedule::compute_executable(program, &model.params)
                .expect("feasible candidate must have an executable schedule");
            let domain = ScheduledDomain::new(program, dims, *steps);
            verify_schedule_storage(&schedule, program, &domain).unwrap_or_else(|e| {
                panic!(
                    "candidate h={} w={:?} failed schedule verification: {e}",
                    model.params.h, model.params.w
                )
            });
        }
    }

    for model in feasible {
        if let Some(kind) = cancel.cancelled() {
            return stop(kind, report);
        }
        report.simulated += 1;
        match scorer(&model) {
            Some(score) => report.ranked.push(AutotuneEntry { model, score }),
            None => report.rejected_scorer += 1,
        }
    }
    Ok(finish(report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::gallery;

    fn small_space() -> SearchSpace {
        SearchSpace {
            h: vec![0, 1, 2],
            w0: vec![1, 3],
            wi: vec![vec![8, 16]],
        }
    }

    #[test]
    fn ranking_follows_scorer() {
        // A scorer preferring tall tiles must rank a taller h first.
        let p = gallery::jacobi2d();
        let report = autotune(&p, &small_space(), &AutotuneConfig::fermi(), |m| {
            Some(m.params.h as f64)
        });
        assert!(!report.ranked.is_empty());
        let best = report.best().unwrap();
        assert_eq!(best.model.params.h, 2);
        assert!(report.ranked.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn budgets_prune_candidates() {
        let p = gallery::jacobi2d();
        let all = autotune(&p, &small_space(), &AutotuneConfig::fermi(), |_| Some(1.0));
        // A budget strictly between the smallest and largest feasible
        // footprint must reject some candidates and keep others.
        let min = all.ranked.iter().map(|e| e.model.smem_bytes).min().unwrap();
        let max = all.ranked.iter().map(|e| e.model.smem_bytes).max().unwrap();
        assert!(min < max, "space too uniform for a pruning test");
        let tight = AutotuneConfig {
            smem_limit: (min + max) / 2,
            ..AutotuneConfig::fermi()
        };
        let pruned = autotune(&p, &small_space(), &tight, |_| Some(1.0));
        assert!(pruned.rejected_smem > 0);
        assert!(pruned.ranked.len() < all.ranked.len());
        assert_eq!(
            pruned.examined,
            pruned.ranked.len()
                + pruned.rejected_schedule
                + pruned.rejected_smem
                + pruned.rejected_regs
                + pruned.rejected_scorer
        );
    }

    #[test]
    fn register_budget_rejects_wide_blocks() {
        let p = gallery::jacobi2d();
        let cfg = AutotuneConfig {
            // jacobi2d: (5 loads + 1 + 8) * 16 threads = 224 regs; budget
            // below that rejects every w1 = 16 candidate.
            regs_per_block: 200,
            ..AutotuneConfig::fermi()
        };
        let report = autotune(&p, &small_space(), &cfg, |_| Some(1.0));
        assert!(report.rejected_regs > 0);
        assert!(report
            .ranked
            .iter()
            .all(|e| estimated_regs_per_block(&p, &e.model.params) <= 200));
    }

    #[test]
    fn max_candidates_caps_scoring() {
        let p = gallery::jacobi2d();
        let mut scored = 0usize;
        let cfg = AutotuneConfig {
            max_candidates: 3,
            ..AutotuneConfig::fermi()
        };
        let report = autotune(&p, &small_space(), &cfg, |_| {
            scored += 1;
            Some(1.0)
        });
        assert_eq!(scored, 3);
        assert_eq!(report.ranked.len(), 3);
        assert!(report.pruned > 0);
    }

    #[test]
    fn verified_sweep_passes_for_gallery_program() {
        let p = gallery::jacobi2d();
        let cfg = AutotuneConfig {
            verify_domain: Some((vec![14, 12], 6)),
            max_candidates: 4,
            ..AutotuneConfig::fermi()
        };
        let report = autotune(&p, &cfg_space(), &cfg, |m| Some(1.0 / (1.0 + m.ratio())));
        assert!(!report.ranked.is_empty());
    }

    fn cfg_space() -> SearchSpace {
        SearchSpace {
            h: vec![1, 2],
            w0: vec![1, 3],
            wi: vec![vec![8]],
        }
    }

    #[test]
    fn cancelled_sweep_returns_ranked_partial_result() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let p = gallery::jacobi2d();
        let flag = Arc::new(AtomicBool::new(false));
        let token = CancelToken::with_flag(flag.clone());
        let mut scored = 0usize;
        // The scorer raises the flag after its first call: the sweep must
        // observe it before the second candidate is scored.
        let result =
            autotune_cancellable(&p, &small_space(), &AutotuneConfig::fermi(), &token, |m| {
                scored += 1;
                flag.store(true, Ordering::SeqCst);
                Some(m.params.h as f64)
            });
        assert_eq!(scored, 1, "cancellation must stop between candidates");
        match result {
            Err(AutotuneError::Cancelled { kind, partial }) => {
                assert_eq!(kind, CancelKind::Flag);
                assert_eq!(partial.ranked.len(), 1);
                assert!(partial.best().is_some());
                let msg = AutotuneError::Cancelled { kind, partial }.to_string();
                assert!(msg.contains("was cancelled"), "{msg}");
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_cancels_before_any_scoring() {
        let p = gallery::jacobi2d();
        let token = CancelToken::with_timeout(std::time::Duration::ZERO);
        let result = autotune_cancellable(
            &p,
            &small_space(),
            &AutotuneConfig::fermi(),
            &token,
            |_| -> Option<f64> { panic!("scorer must not run past an expired deadline") },
        );
        match result {
            Err(AutotuneError::Cancelled { kind, partial }) => {
                assert_eq!(kind, CancelKind::Deadline);
                assert!(partial.ranked.is_empty());
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn never_token_matches_plain_autotune() {
        let p = gallery::jacobi2d();
        let plain = autotune(&p, &small_space(), &AutotuneConfig::fermi(), |m| {
            Some(-m.ratio())
        });
        let via_token = autotune_cancellable(
            &p,
            &small_space(),
            &AutotuneConfig::fermi(),
            &CancelToken::never(),
            |m| Some(-m.ratio()),
        )
        .unwrap();
        assert_eq!(plain.examined, via_token.examined);
        assert_eq!(plain.ranked.len(), via_token.ranked.len());
        assert_eq!(
            plain.best().map(|e| e.model.params.clone()),
            via_token.best().map(|e| e.model.params.clone())
        );
    }

    #[test]
    fn top_k_shortlist_caps_scorer_invocations() {
        let p = gallery::jacobi2d();
        let mut scored = 0usize;
        let cfg = AutotuneConfig {
            top_k: 2,
            ..AutotuneConfig::fermi()
        };
        let report = autotune(&p, &small_space(), &cfg, |m| {
            scored += 1;
            Some(-m.ratio())
        });
        assert_eq!(scored, 2, "only the shortlist reaches the scorer");
        assert_eq!(report.shortlisted, 2);
        assert_eq!(report.simulated, 2);
        assert_eq!(report.ranked.len(), 2);
        // The shortlist discards candidates without counting them as
        // budget rejections or max_candidates pruning.
        assert_eq!(report.pruned, 0);
    }

    #[test]
    fn top_k_zero_preserves_the_exhaustive_oracle() {
        let p = gallery::jacobi2d();
        let exhaustive = autotune(&p, &small_space(), &AutotuneConfig::fermi(), |m| {
            Some(-m.ratio())
        });
        assert_eq!(exhaustive.shortlisted, exhaustive.simulated);
        assert_eq!(exhaustive.simulated, exhaustive.ranked.len());
        // A top_k at least as large as the feasible set is also exhaustive.
        let wide = AutotuneConfig {
            top_k: exhaustive.shortlisted,
            ..AutotuneConfig::fermi()
        };
        let via_k = autotune(&p, &small_space(), &wide, |m| Some(-m.ratio()));
        assert_eq!(via_k.simulated, exhaustive.simulated);
        assert_eq!(
            via_k.best().map(|e| e.model.params.clone()),
            exhaustive.best().map(|e| e.model.params.clone())
        );
    }

    #[test]
    fn merit_is_deterministic_and_positive_for_feasible_candidates() {
        let p = gallery::jacobi2d();
        let cfg = AutotuneConfig::fermi();
        let report = autotune(&p, &small_space(), &cfg, |_| Some(1.0));
        assert!(!report.ranked.is_empty());
        for entry in &report.ranked {
            let m1 = analytical_merit(&p, &entry.model, &cfg);
            let m2 = analytical_merit(&p, &entry.model, &cfg);
            assert!(
                m1.is_finite() && m1 > 0.0,
                "merit {m1} for {:?}",
                entry.model.params
            );
            assert_eq!(m1.to_bits(), m2.to_bits(), "merit must be deterministic");
        }
    }

    #[test]
    fn shortlist_retains_a_high_merit_candidate() {
        // The top-1 shortlist must keep exactly the merit argmax.
        let p = gallery::jacobi2d();
        let cfg = AutotuneConfig {
            top_k: 1,
            ..AutotuneConfig::fermi()
        };
        let exhaustive = autotune(&p, &small_space(), &AutotuneConfig::fermi(), |_| Some(1.0));
        let best_by_merit = exhaustive
            .ranked
            .iter()
            .map(|e| &e.model)
            .max_by(|a, b| {
                analytical_merit(&p, a, &cfg)
                    .total_cmp(&analytical_merit(&p, b, &cfg))
                    .then(b.ratio().total_cmp(&a.ratio()))
            })
            .unwrap();
        let short = autotune(&p, &small_space(), &cfg, |_| Some(1.0));
        assert_eq!(short.ranked.len(), 1);
        assert_eq!(short.ranked[0].model.params, best_by_merit.params);
    }

    #[test]
    fn thread_estimate_matches_block_shape() {
        // 2D: block x = w1; 3D: x = w2, y = w1.
        assert_eq!(
            estimated_threads_per_block(&TileParams::new(2, &[3, 32])),
            32
        );
        assert_eq!(
            estimated_threads_per_block(&TileParams::new(1, &[2, 4, 32])),
            128
        );
        assert_eq!(estimated_threads_per_block(&TileParams::new(2, &[3])), 32);
    }
}
