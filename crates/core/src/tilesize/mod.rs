//! Tile-size selection via the load-to-compute-ratio model (§3.7).
//!
//! The paper selects `h, w0, .., wn` by exactly counting, for a generic
//! (non-boundary) tile, the number of iterations and the number of values
//! loaded from global memory, then picking the parameters with the smallest
//! load-to-compute ratio among those whose memory tile fits the shared
//! memory budget. The paper used manually derived closed forms and notes
//! that "tools to count points in integer polyhedra can automate this" —
//! here the counting is automated by exact enumeration of a representative
//! full tile (the [`polylib`] point-counting substitute for Barvinok).

pub mod autotune;

use std::collections::HashSet;

use stencil::StencilProgram;

use crate::params::{TileError, TileParams};
use crate::phase::Phase;
use crate::schedule::{HybridSchedule, TileCoord};

/// Exact per-tile cost statistics for one parameter choice.
#[derive(Clone, PartialEq, Debug)]
pub struct TileSizeModel {
    /// The parameters evaluated.
    pub params: TileParams,
    /// Statement instances per full tile (`hex points × Π w_i`).
    pub iterations: u64,
    /// Distinct externally produced values a *cold* full tile reads.
    pub cold_loads: u64,
    /// Loads after inter-tile reuse with the predecessor along the
    /// innermost classical dimension (§4.2.2) — the steady-state cost.
    pub steady_loads: u64,
    /// Shared-memory bytes for the bounding box of all values the tile
    /// touches (one slab per live time plane, 4-byte floats).
    pub smem_bytes: u64,
}

impl TileSizeModel {
    /// The steady-state load-to-compute ratio the paper minimizes.
    pub fn ratio(&self) -> f64 {
        self.steady_loads as f64 / self.iterations as f64
    }
}

/// The closed-form §3.7 iteration count for a 3D stencil with
/// `δ0 = δ1 = 1`: `2(1 + 2h + h² + w0(h+1))·w1·w2`.
pub fn formula_3d_iterations(h: i64, w0: i64, w1: i64, w2: i64) -> u64 {
    (2 * (1 + 2 * h + h * h + w0 * (h + 1)) * w1 * w2) as u64
}

/// Packs a value identity `(field, producer-τ, positions..)` into a hash
/// key. Positions of representative tiles are small; each component gets a
/// generous signed range.
fn value_key(field: usize, tau_w: i64, pos: &[i64]) -> u64 {
    let mut k = field as u64;
    k = k
        .wrapping_mul(0x100_0000_0000)
        .wrapping_add((tau_w + 0x8000) as u64 & 0xFFFF);
    for &p in pos {
        k = k
            .wrapping_mul(0x1_0000)
            .wrapping_add((p + 0x4000) as u64 & 0xFFFF);
    }
    k
}

/// Evaluates the exact per-tile model for one parameter choice.
///
/// # Errors
///
/// Propagates schedule-construction failures ([`TileError`]).
pub fn evaluate_tile(
    program: &StencilProgram,
    params: &TileParams,
) -> Result<TileSizeModel, TileError> {
    let schedule = HybridSchedule::compute(program, params)?;
    let n = program.spatial_dims();
    let k = program.num_statements() as i64;

    // A representative interior tile, far from τ = 0.
    let tile = TileCoord {
        t_tile: 8,
        phase: Phase::One,
        s_tiles: vec![0; n],
    };
    let points = schedule.ideal_tile_points(&tile);
    let instance_set: HashSet<(i64, Vec<i64>)> =
        points.iter().map(|p| (p[0], p[1..].to_vec())).collect();

    let (reads, writes) = tile_values(program, k, &points, &instance_set);
    let cold: HashSet<u64> = reads.difference(&writes).copied().collect();

    // Predecessor along the innermost classical dimension (if any): values
    // it read or produced are already in shared memory (§4.2.2 dynamic
    // reuse).
    let steady_loads = if n >= 2 {
        let mut prev_tile = tile.clone();
        prev_tile.s_tiles[n - 1] -= 1;
        let prev_points = schedule.ideal_tile_points(&prev_tile);
        let prev_set: HashSet<(i64, Vec<i64>)> = prev_points
            .iter()
            .map(|p| (p[0], p[1..].to_vec()))
            .collect();
        let (prev_reads, prev_writes) = tile_values(program, k, &prev_points, &prev_set);
        let available: HashSet<u64> = prev_reads.union(&prev_writes).copied().collect();
        cold.difference(&available).count() as u64
    } else {
        cold.len() as u64
    };

    // Shared-memory bounding box: per field, per live plane, the box of
    // positions touched.
    let planes = (program.max_dt() as u64) + 1;
    let mut smem_bytes = 0u64;
    for f in 0..program.num_fields() {
        let mut lo = vec![i64::MAX; n];
        let mut hi = vec![i64::MIN; n];
        let mut touched = false;
        for p in &points {
            let i = (p[0].rem_euclid(k)) as usize;
            let st = &program.statements()[i];
            let mut note = |pos: &[i64]| {
                for d in 0..n {
                    lo[d] = lo[d].min(pos[d]);
                    hi[d] = hi[d].max(pos[d]);
                }
                touched = true;
            };
            if st.writes.0 == f {
                note(&p[1..]);
            }
            for a in st.expr.loads() {
                if a.field.0 == f {
                    let pos: Vec<i64> = p[1..]
                        .iter()
                        .zip(&a.offsets)
                        .map(|(&s, &o)| s + o)
                        .collect();
                    note(&pos);
                }
            }
        }
        if touched {
            let cells: u64 = lo
                .iter()
                .zip(&hi)
                .map(|(&l, &h)| (h - l + 1) as u64)
                .product();
            smem_bytes += cells * planes * 4;
        }
    }

    Ok(TileSizeModel {
        params: params.clone(),
        iterations: points.len() as u64,
        cold_loads: cold.len() as u64,
        steady_loads,
        smem_bytes,
    })
}

/// Returns the (reads, writes) value-identity sets of a tile. A value is
/// identified by its producing instance `(field, τ_w, position)`.
fn tile_values(
    program: &StencilProgram,
    k: i64,
    points: &[Vec<i64>],
    _instances: &HashSet<(i64, Vec<i64>)>,
) -> (HashSet<u64>, HashSet<u64>) {
    let mut reads = HashSet::new();
    let mut writes = HashSet::new();
    for p in points {
        let tau = p[0];
        let i = tau.rem_euclid(k) as usize;
        let st = &program.statements()[i];
        writes.insert(value_key(st.writes.0, tau, &p[1..]));
        for a in st.expr.loads() {
            let j = program.writer_of(a.field) as i64;
            let tau_w = tau - (k * a.dt + (i as i64 - j));
            let pos: Vec<i64> = p[1..]
                .iter()
                .zip(&a.offsets)
                .map(|(&s, &o)| s + o)
                .collect();
            reads.insert(value_key(a.field.0, tau_w, &pos));
        }
    }
    (reads, writes)
}

/// Search space for [`select_tile_sizes`].
#[derive(Clone, Debug)]
pub struct SearchSpace {
    /// Candidate heights.
    pub h: Vec<i64>,
    /// Candidate hexagon widths.
    pub w0: Vec<i64>,
    /// Candidate widths per classical dimension.
    pub wi: Vec<Vec<i64>>,
}

impl SearchSpace {
    /// A space for `n` spatial dimensions from explicit candidate lists:
    /// middle classical dimensions draw from `mid`, the innermost from
    /// `inner` — which should stick to warp-size multiples (the §4.2.3
    /// alignment argument).
    pub fn for_dims(
        n: usize,
        h: Vec<i64>,
        w0: Vec<i64>,
        mid: &[i64],
        inner: &[i64],
    ) -> SearchSpace {
        let wi = (1..n)
            .map(|d| {
                if d == n - 1 {
                    inner.to_vec()
                } else {
                    mid.to_vec()
                }
            })
            .collect();
        SearchSpace { h, w0, wi }
    }

    /// A small default space for `n` spatial dimensions.
    pub fn default_for(n: usize) -> SearchSpace {
        SearchSpace::for_dims(
            n,
            vec![1, 2, 3],
            vec![1, 3, 5, 7],
            &[4, 8, 10, 16],
            &[32, 64],
        )
    }
}

/// Exhaustively evaluates the search space and returns the model with the
/// smallest steady-state load-to-compute ratio among those fitting in
/// `smem_limit` bytes (ties broken toward more iterations per tile).
///
/// Returns `None` if no candidate fits.
pub fn select_tile_sizes(
    program: &StencilProgram,
    smem_limit: u64,
    space: &SearchSpace,
) -> Option<TileSizeModel> {
    let mut best: Option<TileSizeModel> = None;
    for (h, w) in autotune::combinations(space) {
        if w.len() != program.spatial_dims() {
            continue;
        }
        let params = TileParams::new(h, &w);
        let Ok(model) = evaluate_tile(program, &params) else {
            continue;
        };
        if model.smem_bytes > smem_limit {
            continue;
        }
        let better = match &best {
            None => true,
            Some(b) => {
                model.ratio() < b.ratio()
                    || (model.ratio() == b.ratio() && model.iterations > b.iterations)
            }
        };
        if better {
            best = Some(model);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::gallery;

    #[test]
    fn closed_form_matches_enumeration_for_unit_slopes() {
        let p = gallery::heat3d();
        for (h, w0, w1, w2) in [(1, 1, 2, 3), (2, 3, 2, 4), (1, 4, 3, 2)] {
            let m = evaluate_tile(&p, &TileParams::new(h, &[w0, w1, w2])).unwrap();
            assert_eq!(
                m.iterations,
                formula_3d_iterations(h, w0, w1, w2),
                "h={h} w0={w0}"
            );
        }
    }

    #[test]
    fn taller_tiles_amortize_loads() {
        // Raising h must lower the load-to-compute ratio for jacobi2d.
        let p = gallery::jacobi2d();
        let flat = evaluate_tile(&p, &TileParams::new(0, &[3, 8])).unwrap();
        let tall = evaluate_tile(&p, &TileParams::new(3, &[3, 8])).unwrap();
        assert!(
            tall.ratio() < flat.ratio(),
            "tall {} !< flat {}",
            tall.ratio(),
            flat.ratio()
        );
    }

    #[test]
    fn inter_tile_reuse_reduces_loads() {
        let p = gallery::jacobi2d();
        let m = evaluate_tile(&p, &TileParams::new(2, &[3, 8])).unwrap();
        assert!(m.steady_loads < m.cold_loads);
        assert!(m.steady_loads > 0);
    }

    #[test]
    fn smem_grows_with_widths() {
        let p = gallery::jacobi2d();
        let small = evaluate_tile(&p, &TileParams::new(1, &[1, 4])).unwrap();
        let large = evaluate_tile(&p, &TileParams::new(1, &[5, 16])).unwrap();
        assert!(large.smem_bytes > small.smem_bytes);
    }

    #[test]
    fn selection_respects_smem_limit() {
        let p = gallery::jacobi2d();
        let space = SearchSpace {
            h: vec![1, 2],
            w0: vec![1, 3],
            wi: vec![vec![8, 16]],
        };
        let best = select_tile_sizes(&p, 8 * 1024, &space).unwrap();
        assert!(best.smem_bytes <= 8 * 1024);
        // An absurdly small limit leaves no candidates.
        assert!(select_tile_sizes(&p, 64, &space).is_none());
    }

    #[test]
    fn selection_prefers_lower_ratio() {
        let p = gallery::jacobi2d();
        let space = SearchSpace {
            h: vec![0, 2],
            w0: vec![2],
            wi: vec![vec![8]],
        };
        let best = select_tile_sizes(&p, 1 << 20, &space).unwrap();
        assert_eq!(best.params.h, 2, "taller tile has lower ratio");
    }
}
