//! Classical (parallelogram) tiling of the inner spatial dimensions —
//! equations (14)–(17) of the paper (§3.4–§3.5).
//!
//! Each inner dimension `s_i` (`i >= 1`) is strip-mined into tiles of width
//! `w_i`, skewed against the *local* time coordinate `u` by the slope
//! `δ1_i` so that all dependences flow toward non-decreasing tile indices:
//!
//! ```text
//! (14)  S_i  = ⌊(s_i + δ1_i·u) / w_i⌋
//! (17)  s'_i = (s_i + δ1_i·u) mod w_i
//! ```
//!
//! `u` is the phase-local time (equations (15)/(16)), which equals the
//! hexagon-local coordinate `a` — constant per time tile and phase, which
//! is what keeps tile start positions (and therefore global-memory load
//! alignment) independent of `T` (§3.4).
//!
//! Only the *lower* slope `δ1_i` is needed: inside a thread block the
//! classical tiles execute sequentially in increasing `S_i`, so dependences
//! pointing toward smaller `s_i` (which the skew pushes forward) are the
//! only hazard. For rational `δ1_i` the skew uses `⌊δ1_i·u⌋`, which
//! preserves legality (monotonicity of `⌊·⌋`) and coincides with the
//! paper's formula for the integer slopes of all evaluated stencils.

use polylib::Rat;

/// One classically tiled dimension.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassicalDim {
    /// Skew slope `δ1_i` for this dimension.
    pub delta1: Rat,
    /// Tile width `w_i >= 1`.
    pub width: i64,
}

impl ClassicalDim {
    /// Creates a classical dimension description.
    ///
    /// # Panics
    ///
    /// Panics if `width < 1` or `delta1 < 0`.
    pub fn new(delta1: Rat, width: i64) -> ClassicalDim {
        assert!(width >= 1, "classical tile width must be >= 1");
        assert!(delta1 >= Rat::ZERO, "slope must be non-negative");
        ClassicalDim { delta1, width }
    }

    /// The integer skew `⌊δ1_i · u⌋` at local time `u`.
    pub fn skew(&self, u: i64) -> i64 {
        (self.delta1 * Rat::from(u)).floor() as i64
    }

    /// Equation (14): the tile index `S_i` of coordinate `s` at local time
    /// `u`.
    pub fn tile_of(&self, s: i64, u: i64) -> i64 {
        (s + self.skew(u)).div_euclid(self.width)
    }

    /// Equation (17): the intra-tile coordinate `s'_i ∈ [0, w_i)`.
    pub fn local_of(&self, s: i64, u: i64) -> i64 {
        (s + self.skew(u)).rem_euclid(self.width)
    }

    /// Inverse: the global coordinate for tile `tile` and local `local` at
    /// local time `u`.
    pub fn to_global(&self, tile: i64, local: i64, u: i64) -> i64 {
        tile * self.width + local - self.skew(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_have_exact_width() {
        let d = ClassicalDim::new(Rat::ONE, 5);
        for u in 0..8 {
            for s in -20..20 {
                let tile = d.tile_of(s, u);
                let local = d.local_of(s, u);
                assert!((0..5).contains(&local));
                assert_eq!(d.to_global(tile, local, u), s);
            }
        }
    }

    #[test]
    fn skew_slides_windows_with_time() {
        // δ1 = 1, w = 4: at u=0 tile 0 covers s ∈ [0,3]; at u=2 it covers
        // s ∈ [-2,1] — the window moved left to chase dependences.
        let d = ClassicalDim::new(Rat::ONE, 4);
        assert_eq!(d.tile_of(0, 0), 0);
        assert_eq!(d.tile_of(3, 0), 0);
        assert_eq!(d.tile_of(-2, 2), 0);
        assert_eq!(d.tile_of(2, 2), 1);
    }

    /// The legality argument of §3.4: for any dependence with
    /// `-Δs <= δ1·Δτ`, the source tile index never exceeds the target's.
    #[test]
    fn dependences_never_point_to_earlier_tiles() {
        for (num, den) in [(0i128, 1i128), (1, 1), (1, 2), (3, 2), (2, 1)] {
            let delta1 = Rat::new(num, den);
            let d = ClassicalDim::new(delta1, 4);
            for u in 1..10i64 {
                for dtau in 1..=3i64 {
                    if dtau > u {
                        continue;
                    }
                    for s in -12..12i64 {
                        // Worst-case backward spatial distance at this dtau.
                        let max_back = (delta1 * Rat::from(dtau)).floor() as i64;
                        for ds in -3..=max_back {
                            let src_s = s - ds;
                            let src = d.tile_of(src_s, u - dtau);
                            let dst = d.tile_of(s, u);
                            // Only dependences allowed by the slope bound.
                            if Rat::from(-ds) <= delta1 * Rat::from(dtau) {
                                assert!(
                                    src <= dst,
                                    "δ1={delta1}, u={u}, dtau={dtau}, s={s}, ds={ds}: \
                                     src tile {src} > dst tile {dst}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn zero_slope_is_plain_stripmining() {
        let d = ClassicalDim::new(Rat::ZERO, 8);
        for u in 0..5 {
            assert_eq!(d.tile_of(17, u), 2);
            assert_eq!(d.local_of(17, u), 1);
        }
    }

    #[test]
    fn fractional_slope_uses_floor_of_skew() {
        let d = ClassicalDim::new(Rat::new(1, 2), 4);
        assert_eq!(d.skew(0), 0);
        assert_eq!(d.skew(1), 0);
        assert_eq!(d.skew(2), 1);
        assert_eq!(d.skew(5), 2);
    }
}
