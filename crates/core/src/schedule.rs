//! The combined hybrid hexagonal/classical schedule (§3.6, Fig. 6).
//!
//! [`HybridSchedule`] maps statement instances `[τ, s0, .., sn]` of the
//! scheduled space to
//!
//! ```text
//! [T, p, S0, S1, .., Sn, t', s'0, s'1, .., s'n]
//! ```
//!
//! with `(T, S0, t'=a, s'0=b)` from the hexagonal phase maps
//! ([`crate::phase`]), `p` the phase index, and `(S_i, s'_i)` from the
//! classical dimensions ([`crate::classical`]) skewed by the phase-local
//! time `u = a` (equations (15)/(16)).

use polylib::QExpr;
use stencil::StencilProgram;

use crate::classical::ClassicalDim;
use crate::cone::DepCone;
use crate::hexagon::HexShape;
use crate::params::{TileError, TileParams};
use crate::phase::{self, Phase, PhaseCoords};

/// The tile coordinates `(T, p, S0, .., Sn)` of one statement instance.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TileCoord {
    /// Time-tile index `T`.
    pub t_tile: i64,
    /// Phase within the time tile.
    pub phase: Phase,
    /// Spatial tile indices `S0, S1, .., Sn`.
    pub s_tiles: Vec<i64>,
}

/// A fully constructed hybrid schedule for one stencil program.
#[derive(Clone, Debug)]
pub struct HybridSchedule {
    hex: HexShape,
    classical: Vec<ClassicalDim>,
    k: usize,
    cone: DepCone,
}

impl HybridSchedule {
    /// Derives the hybrid schedule of `program` for tile parameters
    /// `params`: computes the dependence cone, builds the hexagon on
    /// `(τ, s0)` and classical tilings on `s1..sn`.
    ///
    /// # Errors
    ///
    /// Propagates [`TileError`] for non-canonical inputs, unbounded cones,
    /// arity mismatches, or a `w0` violating inequality (1).
    pub fn compute(
        program: &StencilProgram,
        params: &TileParams,
    ) -> Result<HybridSchedule, TileError> {
        let cone = DepCone::of_program(program)?;
        HybridSchedule::from_cone(program, params, cone)
    }

    /// Like [`HybridSchedule::compute`], but the cone additionally covers
    /// the storage anti-dependences of the ring-buffered array layout —
    /// required for schedules that drive *executable* code (see
    /// [`DepCone::of_program_with_storage`]).
    ///
    /// # Errors
    ///
    /// See [`HybridSchedule::compute`].
    pub fn compute_executable(
        program: &StencilProgram,
        params: &TileParams,
    ) -> Result<HybridSchedule, TileError> {
        let cone = DepCone::of_program_with_storage(program)?;
        HybridSchedule::from_cone(program, params, cone)
    }

    fn from_cone(
        program: &StencilProgram,
        params: &TileParams,
        cone: DepCone,
    ) -> Result<HybridSchedule, TileError> {
        let n = program.spatial_dims();
        if params.w.len() != n {
            return Err(TileError::ArityMismatch {
                got: params.w.len(),
                expected: n,
            });
        }
        let hex = HexShape::new(cone.delta0(0), cone.delta1(0), params.h, params.w[0])?;
        let classical = (1..n)
            .map(|d| ClassicalDim::new(cone.delta1(d), params.w[d]))
            .collect();
        Ok(HybridSchedule {
            hex,
            classical,
            k: program.num_statements(),
            cone,
        })
    }

    /// The hexagon shape of the `(τ, s0)` plane.
    pub fn hex(&self) -> &HexShape {
        &self.hex
    }

    /// The classical dimensions `s1..sn`.
    pub fn classical(&self) -> &[ClassicalDim] {
        &self.classical
    }

    /// The dependence cone the schedule was derived from.
    pub fn cone(&self) -> &DepCone {
        &self.cone
    }

    /// Statements per outer iteration (`k` of §3.2).
    pub fn num_statements(&self) -> usize {
        self.k
    }

    /// Number of spatial dimensions.
    pub fn spatial_dims(&self) -> usize {
        1 + self.classical.len()
    }

    /// The hexagonal phase/tile claim of the `(τ, s0)` projection of
    /// `point` — `None` if the hexagonal tiling is broken there.
    pub fn locate_hex(&self, tau: i64, s0: i64) -> Option<(Phase, PhaseCoords)> {
        phase::locate(&self.hex, tau, s0)
    }

    /// The tile coordinates of a statement instance `[τ, s0, .., sn]`.
    ///
    /// Returns `None` only if the hexagonal partition fails to claim the
    /// instance exactly once (a bug caught by [`crate::verify`]).
    pub fn tile_of(&self, point: &[i64]) -> Option<TileCoord> {
        assert_eq!(point.len(), 1 + self.spatial_dims(), "point arity");
        let (p, c) = self.locate_hex(point[0], point[1])?;
        let mut s_tiles = Vec::with_capacity(self.spatial_dims());
        s_tiles.push(c.s_tile);
        for (d, cd) in self.classical.iter().enumerate() {
            s_tiles.push(cd.tile_of(point[2 + d], c.a));
        }
        Some(TileCoord {
            t_tile: c.t_tile,
            phase: p,
            s_tiles,
        })
    }

    /// The full schedule vector `[T, p, S0..Sn, t', s'0..s'n]` of an
    /// instance (Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if the hexagonal partition does not claim the instance
    /// exactly once.
    pub fn schedule_vector(&self, point: &[i64]) -> Vec<i64> {
        let (p, c) = self
            .locate_hex(point[0], point[1])
            .expect("instance not claimed exactly once");
        let n = self.spatial_dims();
        let mut v = Vec::with_capacity(2 * n + 3);
        v.push(c.t_tile);
        v.push(p.index());
        v.push(c.s_tile);
        for (d, cd) in self.classical.iter().enumerate() {
            v.push(cd.tile_of(point[2 + d], c.a));
        }
        v.push(c.a);
        v.push(c.b);
        for (d, cd) in self.classical.iter().enumerate() {
            v.push(cd.local_of(point[2 + d], c.a));
        }
        v
    }

    /// Enumerates the *ideal* (untrimmed) instances of a tile: hexagon
    /// points × classical windows, mapped back to global coordinates. A
    /// tile is "full" exactly when all of these lie inside the iteration
    /// domain.
    pub fn ideal_tile_points(&self, tile: &TileCoord) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        let widths: Vec<i64> = self.classical.iter().map(|c| c.width).collect();
        for (a, b) in self.hex.points() {
            let (tau, s0) =
                phase::to_global(&self.hex, tile.phase, tile.t_tile, tile.s_tiles[0], a, b);
            // Cartesian product over classical local coordinates.
            let mut locals = vec![0i64; widths.len()];
            loop {
                let mut pt = Vec::with_capacity(2 + widths.len());
                pt.push(tau);
                pt.push(s0);
                for (d, cd) in self.classical.iter().enumerate() {
                    pt.push(cd.to_global(tile.s_tiles[1 + d], locals[d], a));
                }
                out.push(pt);
                // Odometer.
                let mut d = widths.len();
                loop {
                    if d == 0 {
                        break;
                    }
                    d -= 1;
                    if locals[d] + 1 < widths[d] {
                        locals[d] += 1;
                        for l in locals.iter_mut().take(widths.len()).skip(d + 1) {
                            *l = 0;
                        }
                        break;
                    }
                    locals[d] = 0;
                }
                if locals.iter().all(|&l| l == 0) {
                    break;
                }
            }
        }
        out
    }

    /// Points per full tile: hexagon size × product of classical widths.
    pub fn points_per_full_tile(&self) -> u64 {
        self.hex.count_points()
            * self
                .classical
                .iter()
                .map(|c| c.width as u64)
                .product::<u64>()
    }

    /// The Fig. 6 quasi-affine schedule expressions for `phase`, over
    /// variables `[t, s0, .., sn]`, as `(name, expression)` pairs.
    ///
    /// Exact only for integer slopes (as in Fig. 6, which assumes ±1
    /// distances); returns `None` when a slope is fractional.
    pub fn as_qexprs(&self, ph: Phase) -> Option<Vec<(String, QExpr)>> {
        let d0 = self.hex.delta0();
        let d1 = self.hex.delta1();
        if !d0.is_integer() || !d1.is_integer() {
            return None;
        }
        for c in &self.classical {
            if !c.delta1.is_integer() {
                return None;
            }
        }
        let h = self.hex.h();
        let height = self.hex.box_height();
        let width = self.hex.box_width();
        let w0 = self.hex.w0();
        let f0 = self.hex.f0();
        let f1 = self.hex.f1();
        let t = || QExpr::var(0);
        let s0 = || QExpr::var(1);
        let (t_shift, s_shift) = match ph {
            Phase::Zero => (h + 1, f0 + w0 + 1),
            Phase::One => (0, 0),
        };
        let t_num = || t() + QExpr::constant(t_shift);
        let big_t = t_num().floor_div(height);
        // Drift term T(f1 - f0).
        let drift = f1 - f0;
        let s_num = || s0() + QExpr::constant(s_shift) + (t_num().floor_div(height)).scale(drift);
        let mut v: Vec<(String, QExpr)> = vec![
            ("T".into(), big_t),
            ("p".into(), QExpr::constant(ph.index())),
            ("S0".into(), s_num().floor_div(width)),
        ];
        for (i, c) in self.classical.iter().enumerate() {
            let si = QExpr::var(2 + i);
            let skew = c.delta1.to_integer().expect("checked integer") as i64;
            let e = si + t_num().modulo(height).scale(skew);
            v.push((format!("S{}", i + 1), e.floor_div(c.width)));
        }
        v.push(("t'".into(), t_num().modulo(height)));
        v.push(("s0'".into(), s_num().modulo(width)));
        for (i, c) in self.classical.iter().enumerate() {
            let si = QExpr::var(2 + i);
            let skew = c.delta1.to_integer().expect("checked integer") as i64;
            let e = si + t_num().modulo(height).scale(skew);
            v.push((format!("s{}'", i + 1), e.modulo(c.width)));
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::gallery;

    fn jacobi_schedule(h: i64, w: &[i64]) -> HybridSchedule {
        HybridSchedule::compute(&gallery::jacobi2d(), &TileParams::new(h, w)).unwrap()
    }

    #[test]
    fn schedule_vector_shape() {
        let s = jacobi_schedule(1, &[2, 4]);
        let v = s.schedule_vector(&[0, 1, 1]);
        assert_eq!(v.len(), 7); // T,p,S0,S1,t',s0',s1'
    }

    #[test]
    fn schedule_vector_matches_qexprs_for_unit_slopes() {
        // The closed-form Fig. 6 expressions and the direct computation
        // must agree on every instance of the claimed phase.
        let s = jacobi_schedule(2, &[3, 4]);
        let q0 = s.as_qexprs(Phase::Zero).unwrap();
        let q1 = s.as_qexprs(Phase::One).unwrap();
        for tau in 0..14 {
            for i in -6..14 {
                for j in -6..14 {
                    let pt = [tau, i, j];
                    let v = s.schedule_vector(&pt);
                    let (ph, _) = s.locate_hex(tau, i).unwrap();
                    let q = if ph == Phase::Zero { &q0 } else { &q1 };
                    let qv: Vec<i64> = q.iter().map(|(_, e)| e.eval(&pt)).collect();
                    assert_eq!(v, qv, "instance {pt:?}");
                }
            }
        }
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let err = HybridSchedule::compute(&gallery::jacobi2d(), &TileParams::new(1, &[2]));
        assert!(matches!(err, Err(TileError::ArityMismatch { .. })));
    }

    #[test]
    fn ideal_tile_points_have_uniform_count() {
        let s = jacobi_schedule(1, &[2, 3]);
        let expected = s.points_per_full_tile();
        // Probe several tiles of both phases.
        for tau in [0, 3, 7] {
            for s0 in [1, 5, 9] {
                let tile = s.tile_of(&[tau, s0, 4]).unwrap();
                let pts = s.ideal_tile_points(&tile);
                assert_eq!(pts.len() as u64, expected);
                // Every ideal point maps back to this very tile.
                for p in &pts {
                    assert_eq!(s.tile_of(p).unwrap(), tile, "point {p:?}");
                }
            }
        }
    }

    #[test]
    fn fdtd_schedule_builds_with_fractional_slopes() {
        let p = gallery::fdtd2d();
        let s = HybridSchedule::compute(&p, &TileParams::new(2, &[2, 8])).unwrap();
        // Fractional slopes: no closed-form Fig. 6 rendering.
        assert!(s.as_qexprs(Phase::Zero).is_none() || s.hex().delta0().is_integer());
        let v = s.schedule_vector(&[4, 3, 3]);
        assert_eq!(v.len(), 7);
    }

    #[test]
    fn contrived_schedule_uses_asymmetric_cone() {
        let p = gallery::contrived1d();
        let s = HybridSchedule::compute(&p, &TileParams::new(2, &[3])).unwrap();
        assert_eq!(s.hex().delta0(), polylib::Rat::ONE);
        assert_eq!(s.hex().delta1(), polylib::Rat::from(2));
        assert_eq!(s.spatial_dims(), 1);
        let v = s.schedule_vector(&[5, 0]);
        assert_eq!(v.len(), 5); // T,p,S0,t',s0'
    }
}
