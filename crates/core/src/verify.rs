//! Exhaustive schedule verification (the §3.3.3 correctness argument,
//! checked point-by-point).
//!
//! For a bounded scheduled domain, [`verify_schedule`] checks the three
//! properties the paper proves or argues for:
//!
//! 1. **Partition** — every statement instance is claimed by exactly one
//!    `(T, p, S0)` hexagonal tile (each instance executed once).
//! 2. **Dependence legality under the CUDA execution model** — for every
//!    dependence `src -> dst`:
//!    * tiles with earlier `(T, p)` run in earlier kernel launches: legal;
//!    * within one launch, different `S0` tiles run on *concurrent* thread
//!      blocks: a dependence between them is a violation;
//!    * within one block, classical tiles `(S1..Sn)` run sequentially in
//!      lexicographic order: `src` must not be in a later classical tile;
//!    * within one classical tile, time steps are separated by
//!      `__syncthreads`: the source must have a strictly smaller local
//!      time `a`.
//! 3. **Full-tile uniformity** — every tile whose ideal extent lies fully
//!    inside the domain contains exactly `hex_points × Π w_i` instances
//!    (the no-thread-divergence argument distinguishing hexagonal from
//!    diamond tiling).

use std::collections::HashMap;
use std::fmt;

use stencil::domain::ScheduledDomain;
use stencil::{distance_vectors, StencilProgram};

use crate::phase;
use crate::schedule::{HybridSchedule, TileCoord};

/// A verification failure, with the offending instance(s).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// An instance was claimed by zero or two hexagonal tiles.
    BadClaimCount {
        /// The instance `[τ, s0, ..]`.
        point: Vec<i64>,
        /// How many tiles claimed it.
        claims: usize,
    },
    /// A dependence is ordered incorrectly by the schedule.
    DependenceViolation {
        /// Source instance.
        src: Vec<i64>,
        /// Target instance (depends on `src`).
        dst: Vec<i64>,
        /// Human-readable reason.
        reason: String,
    },
    /// A full tile had an unexpected number of instances.
    NonUniformFullTile {
        /// The tile in question.
        tile: String,
        /// Points found.
        got: u64,
        /// Points expected.
        expected: u64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadClaimCount { point, claims } => {
                write!(f, "instance {point:?} claimed by {claims} tiles (want 1)")
            }
            VerifyError::DependenceViolation { src, dst, reason } => {
                write!(f, "dependence {src:?} -> {dst:?} broken: {reason}")
            }
            VerifyError::NonUniformFullTile {
                tile,
                got,
                expected,
            } => {
                write!(f, "full tile {tile} has {got} points, expected {expected}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Summary statistics of a successful verification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyReport {
    /// Statement instances checked.
    pub instances: u64,
    /// Dependence pairs checked.
    pub dependences: u64,
    /// Tiles fully contained in the domain.
    pub full_tiles: u64,
    /// Tiles clipped by the domain boundary.
    pub partial_tiles: u64,
}

/// Exhaustively verifies `schedule` against `program` on `domain`.
///
/// # Errors
///
/// Returns the first violated property; see [`VerifyError`].
pub fn verify_schedule(
    schedule: &HybridSchedule,
    program: &StencilProgram,
    domain: &ScheduledDomain,
) -> Result<VerifyReport, VerifyError> {
    verify_with_vectors(schedule, domain, &distance_vectors(program))
}

/// Like [`verify_schedule`], but additionally checks the storage
/// anti-dependences of the ring-buffered layout (what executable kernels
/// must respect; see
/// [`crate::DepCone::of_program_with_storage`]).
///
/// # Errors
///
/// See [`verify_schedule`].
pub fn verify_schedule_storage(
    schedule: &HybridSchedule,
    program: &StencilProgram,
    domain: &ScheduledDomain,
) -> Result<VerifyReport, VerifyError> {
    let vectors = stencil::deps::distance_vectors_with_storage(program, program.max_dt() + 1);
    verify_with_vectors(schedule, domain, &vectors)
}

/// Verifies against an explicit dependence-distance vector set.
///
/// # Errors
///
/// See [`verify_schedule`].
pub fn verify_with_vectors(
    schedule: &HybridSchedule,
    domain: &ScheduledDomain,
    vectors: &[stencil::DistanceVector],
) -> Result<VerifyReport, VerifyError> {
    let mut instances = 0u64;
    let mut dependences = 0u64;
    let mut tile_counts: HashMap<TileCoord, u64> = HashMap::new();

    for point in domain.iter() {
        instances += 1;
        // Property 1: exactly one hexagonal claim.
        let claims = phase::claims(schedule.hex(), point[0], point[1]);
        if claims.len() != 1 {
            return Err(VerifyError::BadClaimCount {
                point,
                claims: claims.len(),
            });
        }
        let tile = schedule.tile_of(&point).expect("claimed once");
        *tile_counts.entry(tile.clone()).or_insert(0) += 1;

        // Property 2: every incoming dependence is legal.
        for v in vectors {
            let mut src = point.clone();
            src[0] -= v.dt;
            for (d, &ds) in v.ds.iter().enumerate() {
                src[1 + d] -= ds;
            }
            if !domain.contains(&src) {
                continue;
            }
            dependences += 1;
            let src_vec = schedule.schedule_vector(&src);
            let dst_vec = schedule.schedule_vector(&point);
            check_order(schedule, &src_vec, &dst_vec).map_err(|reason| {
                VerifyError::DependenceViolation {
                    src: src.clone(),
                    dst: point.clone(),
                    reason,
                }
            })?;
        }
    }

    // Property 3: full tiles all carry the same number of instances.
    let expected = schedule.points_per_full_tile();
    let mut full_tiles = 0u64;
    let mut partial_tiles = 0u64;
    for (tile, &count) in &tile_counts {
        let is_full = schedule
            .ideal_tile_points(tile)
            .iter()
            .all(|p| domain.contains(p));
        if is_full {
            full_tiles += 1;
            if count != expected {
                return Err(VerifyError::NonUniformFullTile {
                    tile: format!("{tile:?}"),
                    got: count,
                    expected,
                });
            }
        } else {
            partial_tiles += 1;
        }
    }

    Ok(VerifyReport {
        instances,
        dependences,
        full_tiles,
        partial_tiles,
    })
}

/// Checks one dependence pair against the CUDA execution-model ordering.
/// Schedule vectors are `[T, p, S0, S1.., Sn, t'(=a), s'0.., s'n]`.
fn check_order(schedule: &HybridSchedule, src: &[i64], dst: &[i64]) -> Result<(), String> {
    let n = schedule.spatial_dims();
    // Kernel launch order: (T, p).
    let launch_src = (src[0], src[1]);
    let launch_dst = (dst[0], dst[1]);
    if launch_src < launch_dst {
        return Ok(());
    }
    if launch_src > launch_dst {
        return Err(format!(
            "source launch {launch_src:?} after target launch {launch_dst:?}"
        ));
    }
    // Same launch: S0 tiles execute on concurrent blocks.
    if src[2] != dst[2] {
        return Err(format!(
            "dependence crosses concurrent wavefront tiles S0={} -> S0={}",
            src[2], dst[2]
        ));
    }
    // Same block: classical tiles S1..Sn run sequentially, lexicographically.
    let cls_src = &src[3..2 + n];
    let cls_dst = &dst[3..2 + n];
    if cls_src < cls_dst {
        return Ok(());
    }
    if cls_src > cls_dst {
        return Err(format!(
            "source classical tile {cls_src:?} after target {cls_dst:?}"
        ));
    }
    // Same tile: time steps are barrier-separated; need strictly earlier a.
    let a_src = src[2 + n];
    let a_dst = dst[2 + n];
    if a_src < a_dst {
        Ok(())
    } else {
        Err(format!(
            "intra-tile dependence with non-increasing local time {a_src} -> {a_dst}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TileParams;
    use stencil::gallery;

    fn verify(
        program: &stencil::StencilProgram,
        h: i64,
        w: &[i64],
        dims: &[usize],
        steps: usize,
    ) -> VerifyReport {
        let schedule = HybridSchedule::compute(program, &TileParams::new(h, w)).unwrap();
        let domain = ScheduledDomain::new(program, dims, steps);
        verify_schedule(&schedule, program, &domain).unwrap()
    }

    #[test]
    fn jacobi2d_small_tiles_verify() {
        let p = gallery::jacobi2d();
        let r = verify(&p, 1, &[1, 3], &[14, 12], 8);
        assert!(r.full_tiles > 0, "domain should contain full tiles");
        assert!(r.dependences > 0);
    }

    #[test]
    fn jacobi2d_various_params_verify() {
        let p = gallery::jacobi2d();
        for (h, w0, w1) in [(0, 0, 1), (0, 2, 2), (2, 1, 4), (3, 3, 2)] {
            let _ = verify(&p, h, &[w0, w1], &[16, 10], 10);
        }
    }

    #[test]
    fn contrived1d_asymmetric_cone_verifies() {
        // δ0 = 1, δ1 = 2 with dt up to 2: the hardest small case.
        let p = gallery::contrived1d();
        for (h, w0) in [(1, 2), (2, 3), (3, 5)] {
            let _ = verify(&p, h, &[w0], &[40], 12);
        }
    }

    #[test]
    fn fdtd_multi_statement_verifies() {
        let p = gallery::fdtd2d();
        // k = 3 statements; fractional cone slopes.
        let _ = verify(&p, 2, &[2, 4], &[12, 12], 4);
    }

    #[test]
    fn heat3d_verifies() {
        let p = gallery::heat3d();
        let _ = verify(&p, 1, &[1, 2, 3], &[8, 8, 8], 4);
    }

    #[test]
    fn full_tiles_counted_uniform() {
        let p = gallery::jacobi2d();
        let schedule = HybridSchedule::compute(&p, &TileParams::new(1, &[2, 3])).unwrap();
        let domain = ScheduledDomain::new(&p, &[20, 14], 12);
        let r = verify_schedule(&schedule, &p, &domain).unwrap();
        assert!(r.full_tiles >= 4);
        assert_eq!(
            r.instances,
            domain.num_points(),
            "every instance visited once"
        );
    }

    #[test]
    fn order_check_rejects_backward_launch() {
        let p = gallery::jacobi2d();
        let s = HybridSchedule::compute(&p, &TileParams::new(1, &[2, 3])).unwrap();
        // src in a later launch than dst.
        let src = vec![5, 0, 0, 0, 1, 1, 0];
        let dst = vec![4, 0, 0, 0, 1, 1, 0];
        assert!(check_order(&s, &src, &dst).is_err());
    }

    #[test]
    fn order_check_rejects_cross_wavefront() {
        let p = gallery::jacobi2d();
        let s = HybridSchedule::compute(&p, &TileParams::new(1, &[2, 3])).unwrap();
        let src = vec![4, 0, 1, 0, 1, 1, 0];
        let dst = vec![4, 0, 2, 0, 2, 1, 0];
        let err = check_order(&s, &src, &dst).unwrap_err();
        assert!(err.contains("concurrent wavefront"));
    }

    #[test]
    fn order_check_allows_forward_classical() {
        let p = gallery::jacobi2d();
        let s = HybridSchedule::compute(&p, &TileParams::new(1, &[2, 3])).unwrap();
        // Earlier classical tile, even at a *later* local time: legal,
        // because classical tiles complete before successors start.
        let src = vec![4, 0, 1, 0, 3, 1, 0];
        let dst = vec![4, 0, 1, 1, 1, 1, 0];
        assert!(check_order(&s, &src, &dst).is_ok());
    }
}
