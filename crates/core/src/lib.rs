//! # hybrid-tiling — hybrid hexagonal/classical tiling (CGO 2014, §3)
//!
//! This crate implements the paper's primary contribution: the construction
//! of a *hybrid hexagonal/classical* tiling schedule for iterative stencil
//! computations, mapping statement instances
//!
//! ```text
//! [t, s0, .., sn]  ->  [T, p, S0, S1, .., Sn, t', s'0, .., s'n]
//! ```
//!
//! where `(T, p)` enumerate time tiles and their two wavefront *phases*,
//! `S0` indexes hexagonal tiles along the time/`s0` plane (parallel within a
//! phase), `S1..Sn` index classical (parallelogram) tiles along the
//! remaining spatial dimensions (sequential inside a thread block), and the
//! primed coordinates are intra-tile schedules.
//!
//! The pipeline follows the paper section by section:
//!
//! * [`cone`] — the opposite dependence cone and its slopes δ0/δ1, computed
//!   from dependence distance vectors by exact LP (§3.3.2, Fig. 3);
//! * [`hexagon`] — the hexagonal tile shape: the width lower bound of
//!   inequality (1) and the local-coordinate constraints (6)–(13)
//!   (§3.3.2–§3.3.3, Fig. 4); the shape is *also* constructible by the
//!   truncated-cone subtraction of Fig. 4, and the two constructions are
//!   asserted equal in tests;
//! * [`phase`] — the two-phase tile indexing of equations (2)–(5) (Fig. 5);
//! * [`classical`] — the classical tiling of the inner dimensions,
//!   equations (14)–(17) (§3.4–§3.5);
//! * [`schedule`] — the combined hybrid schedule of §3.6 (Fig. 6);
//! * [`verify`] — exhaustive correctness checking: unique tile ownership,
//!   dependence legality under the CUDA execution model, and identical
//!   point counts across full tiles (the paper's no-divergence argument);
//! * [`tilesize`] — the load-to-compute-ratio tile-size model of §3.7;
//! * [`tilesize::autotune`] — the §6 autotuning sweep: enumerate the
//!   `(h, w0, ..)` space under shared-memory/register budgets, verify the
//!   surviving schedules, and rank them by a caller-supplied (typically
//!   simulator-backed) score.
//!
//! ```
//! use hybrid_tiling::{HybridSchedule, TileParams};
//! use stencil::gallery;
//!
//! let program = gallery::jacobi2d();
//! let params = TileParams::new(2, &[3, 8]);
//! let schedule = HybridSchedule::compute(&program, &params)?;
//! // Map one statement instance [tau, i, j] to its schedule vector.
//! let v = schedule.schedule_vector(&[5, 7, 9]);
//! assert_eq!(v.len(), 7); // [T, p, S0, S1, t', s0', s1']
//! # Ok::<(), hybrid_tiling::TileError>(())
//! ```

pub mod cancel;
pub mod classical;
pub mod cone;
pub mod hexagon;
pub mod params;
pub mod phase;
pub mod schedule;
pub mod tilesize;
pub mod verify;

pub use cancel::{CancelKind, CancelToken};
pub use cone::DepCone;
pub use hexagon::HexShape;
pub use params::{TileError, TileParams};
pub use phase::{Phase, PhaseCoords};
pub use schedule::{HybridSchedule, TileCoord};
pub use tilesize::autotune::{
    autotune, autotune_cancellable, AutotuneConfig, AutotuneEntry, AutotuneError, AutotuneReport,
};
pub use tilesize::{select_tile_sizes, SearchSpace, TileSizeModel};
pub use verify::{verify_schedule, VerifyError};
