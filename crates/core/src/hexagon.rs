//! The hexagonal tile shape (§3.3.2–§3.3.3, Fig. 4).
//!
//! A hexagonal tile lives in the local coordinates `(a, b)` of a rectangular
//! box of height `2h + 2` and width `2w0 + 2 + ⌊δ0h⌋ + ⌊δ1h⌋`. Its boundary
//! is given by the constraints (6)–(13) of the paper:
//!
//! ```text
//! (6)   δ0·a - b <= (2h+1)δ0 - ⌊δ0h⌋
//! (7)   a <= 2h + 1
//! (8)   δ1·a + b <= (2h+1)δ1 + ⌊δ0h⌋ + w0
//! (10)  δ1·a + b >= h·δ1 - (d1-1)/d1
//! (12)  δ0·a - b >= δ0h - ⌊δ0h⌋ - w0 - ⌊δ1h⌋ - (d0-1)/d0
//! (13)  a >= 0
//! ```
//!
//! The same shape arises by subtracting three shifted truncated dependence
//! cones from a fourth (Fig. 4); [`HexShape::points_by_cone_subtraction`]
//! implements that construction literally and the test suite asserts both
//! constructions produce identical point sets — including the width bound of
//! inequality (1), below which the subtraction stops being a convex
//! hexagon.

use polylib::{Aff, BasicSet, Rat};

use crate::params::TileError;

/// A hexagonal tile shape in box-local coordinates.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HexShape {
    delta0: Rat,
    delta1: Rat,
    h: i64,
    w0: i64,
    /// `⌊δ0·h⌋`.
    f0: i64,
    /// `⌊δ1·h⌋`.
    f1: i64,
}

impl HexShape {
    /// Constructs the hexagon for slopes `(delta0, delta1)`, height
    /// parameter `h` and width `w0`.
    ///
    /// # Errors
    ///
    /// Returns [`TileError::WidthTooSmall`] if `w0` violates inequality (1):
    /// `w0 >= max(δ0 + {δ0h}, δ1 + {δ1h}) - 1`.
    pub fn new(delta0: Rat, delta1: Rat, h: i64, w0: i64) -> Result<HexShape, TileError> {
        assert!(h >= 0, "height parameter must be non-negative");
        assert!(
            delta0 >= Rat::ZERO && delta1 >= Rat::ZERO,
            "slopes must be non-negative"
        );
        let minimum = HexShape::min_width(delta0, delta1, h);
        if w0 < minimum {
            return Err(TileError::WidthTooSmall {
                requested: w0,
                minimum,
            });
        }
        let f0 = (delta0 * Rat::from(h)).floor() as i64;
        let f1 = (delta1 * Rat::from(h)).floor() as i64;
        Ok(HexShape {
            delta0,
            delta1,
            h,
            w0,
            f0,
            f1,
        })
    }

    /// The minimal legal width of inequality (1):
    /// `⌈max(δ0 + {δ0h}, δ1 + {δ1h}) - 1⌉`, clamped to `>= 0`.
    pub fn min_width(delta0: Rat, delta1: Rat, h: i64) -> i64 {
        let hh = Rat::from(h);
        let c0 = delta0 + (delta0 * hh).fract();
        let c1 = delta1 + (delta1 * hh).fract();
        (c0.max(c1) - Rat::ONE).ceil().max(0) as i64
    }

    /// Slope δ0 (upper bound on `Δs0/Δt`).
    pub fn delta0(&self) -> Rat {
        self.delta0
    }

    /// Slope δ1 (upper bound on `-Δs0/Δt`).
    pub fn delta1(&self) -> Rat {
        self.delta1
    }

    /// Height parameter `h`.
    pub fn h(&self) -> i64 {
        self.h
    }

    /// Width parameter `w0`.
    pub fn w0(&self) -> i64 {
        self.w0
    }

    /// `⌊δ0·h⌋`.
    pub fn f0(&self) -> i64 {
        self.f0
    }

    /// `⌊δ1·h⌋`.
    pub fn f1(&self) -> i64 {
        self.f1
    }

    /// Height of the enclosing box: `2h + 2` time steps.
    pub fn box_height(&self) -> i64 {
        2 * self.h + 2
    }

    /// Width of the enclosing box (the `S0` stride):
    /// `2w0 + 2 + ⌊δ0h⌋ + ⌊δ1h⌋`.
    pub fn box_width(&self) -> i64 {
        2 * self.w0 + 2 + self.f0 + self.f1
    }

    /// True if local coordinates `(a, b)` lie inside the hexagon
    /// (constraints (6)–(13)).
    pub fn contains_local(&self, a: i64, b: i64) -> bool {
        if a < 0 || a > 2 * self.h + 1 {
            return false; // (7), (13)
        }
        let (a, b) = (Rat::from(a), Rat::from(b));
        let h = Rat::from(self.h);
        let two_h1 = Rat::from(2 * self.h + 1);
        let f0 = Rat::from(self.f0);
        let f1 = Rat::from(self.f1);
        let w0 = Rat::from(self.w0);
        let d0 = Rat::new(1, self.delta0.den()); // 1/d0
        let d1 = Rat::new(1, self.delta1.den()); // 1/d1
        let lhs0 = self.delta0 * a - b;
        let lhs1 = self.delta1 * a + b;
        // (6)
        lhs0 <= two_h1 * self.delta0 - f0
            // (8)
            && lhs1 <= two_h1 * self.delta1 + f0 + w0
            // (10): δ1a + b >= hδ1 - (d1-1)/d1
            && lhs1 >= h * self.delta1 - (Rat::ONE - d1)
            // (12)
            && lhs0 >= self.delta0 * h - f0 - w0 - f1 - (Rat::ONE - d0)
    }

    /// The hexagon as a polyhedral set over `(a, b)`.
    pub fn as_basic_set(&self) -> BasicSet {
        let dim = 2;
        let a = || Aff::var(dim, 0);
        let b = || Aff::var(dim, 1);
        let c = |r: Rat| Aff::constant(dim, r);
        let h = Rat::from(self.h);
        let two_h1 = Rat::from(2 * self.h + 1);
        let f0 = Rat::from(self.f0);
        let f1 = Rat::from(self.f1);
        let w0 = Rat::from(self.w0);
        let inv_d0 = Rat::new(1, self.delta0.den());
        let inv_d1 = Rat::new(1, self.delta1.den());
        BasicSet::new(dim)
            // (13) a >= 0
            .with_ge(a())
            // (7) 2h+1 - a >= 0
            .with_ge(c(two_h1) - a())
            // (6) (2h+1)δ0 - f0 - δ0 a + b >= 0
            .with_ge(c(two_h1 * self.delta0 - f0) - a() * self.delta0 + b())
            // (8) (2h+1)δ1 + f0 + w0 - δ1 a - b >= 0
            .with_ge(c(two_h1 * self.delta1 + f0 + w0) - a() * self.delta1 - b())
            // (10) δ1 a + b - hδ1 + (d1-1)/d1 >= 0
            .with_ge(a() * self.delta1 + b() - c(h * self.delta1 - (Rat::ONE - inv_d1)))
            // (12) δ0 a - b - (δ0 h - f0 - w0 - f1) + (d0-1)/d0 >= 0
            .with_ge(
                a() * self.delta0 - b() - c(self.delta0 * h - f0 - w0 - f1 - (Rat::ONE - inv_d0)),
            )
    }

    /// Exact number of integer points in the hexagon.
    ///
    /// For `δ0 = δ1 = 1` this equals `2(h+1)(h+1+w0)` — the per-tile
    /// iteration count underlying the §3.7 formula
    /// `2(1 + 2h + h² + w0(h+1))·w1·w2`.
    pub fn count_points(&self) -> u64 {
        self.as_basic_set().count_points()
    }

    /// All hexagon points `(a, b)`, lexicographically.
    pub fn points(&self) -> Vec<(i64, i64)> {
        self.as_basic_set().points().map(|p| (p[0], p[1])).collect()
    }

    /// Range of `b` for a given row `a`, or `None` if the row is empty.
    pub fn row_range(&self, a: i64) -> Option<(i64, i64)> {
        if a < 0 || a > 2 * self.h + 1 {
            return None;
        }
        let mut lo = None;
        let mut hi = None;
        // The box width bounds every row.
        for b in -(self.box_width())..=(2 * self.box_width()) {
            if self.contains_local(a, b) {
                if lo.is_none() {
                    lo = Some(b);
                }
                hi = Some(b);
            }
        }
        lo.zip(hi)
    }

    /// Fig. 4's literal construction: the set of points of one tile obtained
    /// by subtracting three shifted truncated opposite-dependence cones from
    /// the anchor truncated cone, translated into the same `(a, b)` local
    /// coordinates as [`HexShape::contains_local`].
    ///
    /// The anchor cone hangs below the `w0 + 1` instances at offsets
    /// `(0, 0)..(0, w0)`; the subtracted cones sit at offsets
    /// `(-h-1, -w0-1-⌊δ0h⌋)`, `(-h-1, w0+1+⌊δ1h⌋)` and
    /// `(-2h-2, ⌊δ1h⌋-⌊δ0h⌋)`. Local coordinates: `a = x + 2h + 1`,
    /// `b = y + ⌊δ0h⌋`.
    pub fn points_by_cone_subtraction(&self) -> Vec<(i64, i64)> {
        let in_cone = |x: i64, y: i64| -> bool {
            // Truncated cone: x <= 0, y >= δ0 x, y <= -δ1 x + w0.
            let (x, y) = (Rat::from(x), Rat::from(y));
            x.signum() <= 0 && y >= self.delta0 * x && y <= -(self.delta1 * x) + Rat::from(self.w0)
        };
        let offsets = [
            (-self.h - 1, -self.w0 - 1 - self.f0),
            (-self.h - 1, self.w0 + 1 + self.f1),
            (-2 * self.h - 2, self.f1 - self.f0),
        ];
        let mut out = Vec::new();
        // The tile is contained in x ∈ [-2h-1, 0]; scan a safe window in y.
        let y_lo = -(self.box_width()) - self.f0 - 2;
        let y_hi = 2 * self.box_width() + self.f1 + 2;
        for x in (-2 * self.h - 2)..=0 {
            for y in y_lo..=y_hi {
                if in_cone(x, y) && offsets.iter().all(|&(ox, oy)| !in_cone(x - ox, y - oy)) {
                    out.push((x + 2 * self.h + 1, y + self.f0));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d0: (i128, i128), d1: (i128, i128), h: i64, w0: i64) -> HexShape {
        HexShape::new(Rat::new(d0.0, d0.1), Rat::new(d1.0, d1.1), h, w0).unwrap()
    }

    #[test]
    fn unit_slope_count_matches_section37_formula() {
        for h in 0..4 {
            for w0 in 0..5 {
                let s = hex((1, 1), (1, 1), h, w0);
                assert_eq!(
                    s.count_points() as i64,
                    2 * (h + 1) * (h + 1 + w0),
                    "h={h}, w0={w0}"
                );
            }
        }
    }

    #[test]
    fn constraints_equal_cone_subtraction() {
        // The two §3.3.2 constructions must agree, across slope shapes that
        // exercise fractional floors (d=2,3) and the paper's Fig. 4 example.
        let cases = [
            ((1, 1), (1, 1), 2, 3),
            ((1, 1), (2, 1), 2, 3), // Fig. 4: δ0=1, δ1=2, h=2, w0=3
            ((1, 2), (1, 1), 3, 2),
            ((1, 3), (2, 3), 4, 2),
            ((0, 1), (1, 1), 2, 1),
            ((3, 2), (1, 2), 1, 2),
        ];
        for ((a0, b0), (a1, b1), h, w0) in cases {
            let s = hex((a0, b0), (a1, b1), h, w0);
            let from_constraints: Vec<(i64, i64)> = s.points();
            let from_cones = s.points_by_cone_subtraction();
            assert_eq!(
                from_constraints, from_cones,
                "δ0={a0}/{b0}, δ1={a1}/{b1}, h={h}, w0={w0}"
            );
        }
    }

    #[test]
    fn width_below_inequality_1_is_rejected() {
        // δ1 = 2, h = 2: {δ1 h} = 0, so w0 >= 2 - 1 = 1; w0 = 0 must fail.
        let err = HexShape::new(Rat::ONE, Rat::from(2), 2, 0);
        assert!(matches!(
            err,
            Err(TileError::WidthTooSmall { minimum: 1, .. })
        ));
    }

    #[test]
    fn min_width_accounts_for_fractional_part() {
        // δ0 = 3/2, h = 1: {δ0 h} = 1/2, bound = 3/2 + 1/2 - 1 = 1.
        assert_eq!(HexShape::min_width(Rat::new(3, 2), Rat::ZERO, 1), 1);
        // δ0 = δ1 = 1: bound = 0.
        assert_eq!(HexShape::min_width(Rat::ONE, Rat::ONE, 2), 0);
    }

    #[test]
    fn paper_figure4_dimensions() {
        // Fig. 4: w0 = 3, h = 2, δ0 = 1, δ1 = 2 (from Fig. 3's example).
        let s = hex((1, 1), (2, 1), 2, 3);
        assert_eq!(s.box_height(), 6);
        assert_eq!(s.f0(), 2);
        assert_eq!(s.f1(), 4);
        assert_eq!(s.box_width(), 2 * 3 + 2 + 2 + 4);
    }

    #[test]
    fn top_row_has_w0_plus_1_points() {
        for (d0, d1, h, w0) in [((1, 1), (1, 1), 2, 3), ((1, 2), (1, 1), 3, 2)] {
            let s = hex(d0, d1, h, w0);
            let (lo, hi) = s.row_range(2 * h + 1).expect("top row non-empty");
            assert_eq!(hi - lo + 1, w0 + 1, "top row is the adjustable peak");
        }
    }

    #[test]
    fn rows_tile_contiguously() {
        // Every row of the hexagon is a contiguous run (needed for
        // divergence-free unrolled loops).
        let s = hex((1, 1), (2, 1), 2, 3);
        for a in 0..=2 * s.h() + 1 {
            if let Some((lo, hi)) = s.row_range(a) {
                for b in lo..=hi {
                    assert!(s.contains_local(a, b), "gap at ({a},{b})");
                }
            }
        }
    }

    #[test]
    // The unreduced arithmetic spells out the closed form at h = 0.
    #[allow(clippy::identity_op)]
    fn zero_height_hexagon_is_two_rows() {
        let s = hex((1, 1), (1, 1), 0, 1);
        assert_eq!(s.box_height(), 2);
        assert_eq!(s.count_points(), 2 * (0 + 1) * (0 + 1 + 1));
    }
}
