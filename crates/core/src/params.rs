//! Tile-size parameters and construction errors.

use std::fmt;

/// Tile-size parameters of the hybrid schedule (paper §3.6): the time
/// height parameter `h` and the per-spatial-dimension widths `w0..wn`.
///
/// `h` controls the tile extent along time: one phase covers `2h + 2` time
/// steps. `w[0]` is the *minimal* width of the hexagonal dimension (the
/// adjustable peak of §2); `w[1..]` are the exact widths of the classically
/// tiled dimensions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TileParams {
    /// Time height parameter `h >= 0`.
    pub h: i64,
    /// Widths `w0, w1, .., wn`, one per spatial dimension.
    pub w: Vec<i64>,
}

impl TileParams {
    /// Creates tile parameters.
    ///
    /// # Panics
    ///
    /// Panics if `h < 0` or any width is `< 0` (zero `w0` is allowed — the
    /// hexagon peak then has a single column; classical widths must be
    /// `>= 1`).
    pub fn new(h: i64, w: &[i64]) -> TileParams {
        assert!(h >= 0, "tile height must be non-negative");
        assert!(!w.is_empty(), "at least one spatial width required");
        assert!(w[0] >= 0, "hexagon width must be non-negative");
        assert!(
            w[1..].iter().all(|&x| x >= 1),
            "classical widths must be positive"
        );
        TileParams { h, w: w.to_vec() }
    }

    /// Number of spatial dimensions covered.
    pub fn spatial_dims(&self) -> usize {
        self.w.len()
    }

    /// The time extent of one phase: `2h + 2`.
    pub fn time_extent(&self) -> i64 {
        2 * self.h + 2
    }
}

/// Errors arising while constructing a hybrid schedule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TileError {
    /// A dependence has non-positive scheduled time distance: the input is
    /// not in the canonical form of §3.2.
    UncarriedDependence(String),
    /// The dependence cone is unbounded in some spatial direction, so no
    /// finite δ exists (violates the §3.3.1 boundedness assumption).
    UnboundedCone(usize),
    /// `w0` is below the lower bound of inequality (1); the subtraction
    /// would not produce a convex hexagon.
    WidthTooSmall {
        /// Requested hexagon width.
        requested: i64,
        /// Minimal legal width for the given slopes and height.
        minimum: i64,
    },
    /// Parameter arity does not match the program's spatial dimensions.
    ArityMismatch {
        /// Widths supplied.
        got: usize,
        /// Spatial dimensions of the program.
        expected: usize,
    },
}

impl fmt::Display for TileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileError::UncarriedDependence(s) => {
                write!(f, "dependence not carried by the time dimension: {s}")
            }
            TileError::UnboundedCone(d) => write!(
                f,
                "dependence distances unbounded relative to time in spatial dim {d}"
            ),
            TileError::WidthTooSmall { requested, minimum } => write!(
                f,
                "hexagon width w0 = {requested} below the inequality-(1) minimum {minimum}"
            ),
            TileError::ArityMismatch { got, expected } => {
                write!(f, "got {got} widths for {expected} spatial dimensions")
            }
        }
    }
}

impl std::error::Error for TileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_extent_is_2h_plus_2() {
        assert_eq!(TileParams::new(0, &[1]).time_extent(), 2);
        assert_eq!(TileParams::new(3, &[1, 32]).time_extent(), 8);
    }

    #[test]
    #[should_panic(expected = "classical widths")]
    fn zero_classical_width_rejected() {
        let _ = TileParams::new(1, &[3, 0]);
    }

    #[test]
    fn errors_display() {
        let e = TileError::WidthTooSmall {
            requested: 0,
            minimum: 2,
        };
        assert!(e.to_string().contains("inequality-(1)"));
    }
}
