//! Cooperative cancellation for long-running sweeps.
//!
//! A [`CancelToken`] carries an optional **deadline** and an optional
//! shared **flag**; work that may run for a long time (the §6 tile-size
//! sweep, a simulator-backed scoring pass) checks the token at cheap
//! boundaries — between candidates, between pipeline stages — and
//! returns a typed partial result instead of occupying its worker
//! indefinitely. Cancellation is *cooperative*: nothing is interrupted
//! mid-candidate, so every observable intermediate state is one the
//! uncancelled computation would also have produced.
//!
//! The token is cheap to clone (an `Option<Instant>` plus an
//! `Option<Arc<AtomicBool>>`) and is plumbed by value through the
//! driver's configuration; [`CancelToken::never`] is the default and
//! makes every check free-ish (two `Option` tests).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a computation was cancelled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CancelKind {
    /// The token's deadline passed (maps to a `deadline_exceeded`
    /// protocol error).
    Deadline,
    /// The token's shared flag was raised (an explicit `cancel` request;
    /// maps to a `cancelled` protocol error).
    Flag,
}

impl CancelKind {
    /// Stable machine-readable name (`"deadline_exceeded"` /
    /// `"cancelled"`), matching the serve protocol's `error_kind`.
    pub fn name(self) -> &'static str {
        match self {
            CancelKind::Deadline => "deadline_exceeded",
            CancelKind::Flag => "cancelled",
        }
    }
}

/// A cooperative cancellation token: deadline, flag, both, or neither.
///
/// When both are set and both have fired, the **flag wins** — an
/// explicit cancel is more specific than a timeout.
#[derive(Clone, Default)]
pub struct CancelToken {
    deadline: Option<Instant>,
    flag: Option<Arc<AtomicBool>>,
}

impl CancelToken {
    /// A token that never cancels (the default for one-shot compiles).
    pub fn never() -> CancelToken {
        CancelToken::default()
    }

    /// A token that cancels once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            deadline: Some(deadline),
            flag: None,
        }
    }

    /// A token that cancels `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline(saturating_deadline(Instant::now(), timeout))
    }

    /// A token that cancels once `flag` is raised (see
    /// [`CancelToken::cancel`] on the returned clone, or raise the
    /// shared flag directly).
    pub fn with_flag(flag: Arc<AtomicBool>) -> CancelToken {
        CancelToken {
            deadline: None,
            flag: Some(flag),
        }
    }

    /// This token, additionally bounded by `deadline`.
    pub fn and_deadline(mut self, deadline: Instant) -> CancelToken {
        self.deadline = Some(match self.deadline {
            Some(d) => d.min(deadline),
            None => deadline,
        });
        self
    }

    /// This token, additionally bounded by a deadline `timeout` from now.
    /// Saturates like [`CancelToken::with_timeout`], so a client-supplied
    /// `u64::MAX`-millisecond deadline clamps to far-future instead of
    /// panicking in `Instant + Duration`.
    pub fn and_deadline_after(self, timeout: Duration) -> CancelToken {
        self.and_deadline(saturating_deadline(Instant::now(), timeout))
    }

    /// Raises the shared flag (a no-op for tokens without one). Every
    /// clone of this token observes the cancellation.
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// The shared flag, if this token has one.
    pub fn flag(&self) -> Option<&Arc<AtomicBool>> {
        self.flag.as_ref()
    }

    /// The deadline, if this token has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Checks the token: `None` while work may continue, or the reason
    /// to stop. An explicit flag takes precedence over the deadline.
    pub fn cancelled(&self) -> Option<CancelKind> {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::SeqCst) {
                return Some(CancelKind::Flag);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(CancelKind::Deadline);
            }
        }
        None
    }

    /// Time remaining until the deadline (`None` for deadline-free
    /// tokens; zero once the deadline passed). Used to bound condvar
    /// waits so a cancelled waiter wakes promptly.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// `base + timeout`, clamped to a far-future instant instead of panicking
/// on absurd durations: a deadline ~30 years out is indistinguishable from
/// "never" in practice. Every deadline computed from untrusted input
/// (e.g. a wire request's `deadline_ms`) must go through this.
pub fn saturating_deadline(base: Instant, timeout: Duration) -> Instant {
    base.checked_add(timeout)
        .unwrap_or_else(|| base + Duration::from_secs(86400 * 10000))
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("deadline", &self.deadline)
            .field(
                "flag",
                &self.flag.as_ref().map(|x| x.load(Ordering::SeqCst)),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_never_cancels() {
        assert_eq!(CancelToken::never().cancelled(), None);
        assert_eq!(CancelToken::never().remaining(), None);
    }

    #[test]
    fn deadline_in_the_past_cancels_immediately() {
        let t = CancelToken::with_timeout(Duration::ZERO);
        assert_eq!(t.cancelled(), Some(CancelKind::Deadline));
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn flag_cancels_every_clone_and_wins_over_deadline() {
        let t = CancelToken::with_flag(Arc::new(AtomicBool::new(false)))
            .and_deadline(Instant::now() - Duration::from_secs(1));
        // Deadline already passed, flag not yet raised.
        assert_eq!(t.cancelled(), Some(CancelKind::Deadline));
        let clone = t.clone();
        clone.cancel();
        assert_eq!(t.cancelled(), Some(CancelKind::Flag));
    }

    #[test]
    fn extreme_timeouts_saturate_instead_of_panicking() {
        // u64::MAX milliseconds overflows Instant arithmetic on every
        // platform; the saturating constructors must clamp, not panic.
        let huge = Duration::from_millis(u64::MAX);
        let t = CancelToken::with_timeout(huge);
        assert_eq!(t.cancelled(), None, "a far-future deadline has not fired");
        let t = CancelToken::with_flag(Arc::new(AtomicBool::new(false))).and_deadline_after(huge);
        assert_eq!(t.cancelled(), None);
        assert!(t.deadline().is_some());
        // And the saturated deadline still behaves as an upper bound: a
        // nearer deadline added afterwards wins.
        let near = Instant::now();
        assert_eq!(t.and_deadline(near).cancelled(), Some(CancelKind::Deadline));
    }

    #[test]
    fn and_deadline_keeps_the_earlier_deadline() {
        let early = Instant::now();
        let late = early + Duration::from_secs(3600);
        let t = CancelToken::with_deadline(late).and_deadline(early);
        assert_eq!(t.deadline(), Some(early));
        let t = CancelToken::with_deadline(early).and_deadline(late);
        assert_eq!(t.deadline(), Some(early));
    }
}
