//! §3 hexagon point counts: the closed form, the polyhedral counter, and a
//! brute-force membership scan must all agree across a parameter grid.

use hybrid_tiling::{HexShape, HybridSchedule, TileParams};
use polylib::Rat;
use stencil::gallery;

/// Independent brute force: scan the (a, b) bounding window with
/// `contains_local`, bypassing the polyhedral enumerator entirely.
fn brute_force_count(hex: &HexShape) -> u64 {
    let mut n = 0;
    let b_lo = -hex.box_width() - hex.f0() - 2;
    let b_hi = 2 * hex.box_width() + hex.f1() + 2;
    for a in 0..=2 * hex.h() + 1 {
        for b in b_lo..=b_hi {
            if hex.contains_local(a, b) {
                n += 1;
            }
        }
    }
    n
}

#[test]
fn closed_form_matches_brute_force_for_unit_slopes() {
    // For δ0 = δ1 = 1 the paper's §3.7 count is 2(h+1)(h+1+w0).
    for h in 0..5 {
        for w0 in 0..6 {
            let hex = HexShape::new(Rat::ONE, Rat::ONE, h, w0).unwrap();
            let closed_form = (2 * (h + 1) * (h + 1 + w0)) as u64;
            assert_eq!(hex.count_points(), closed_form, "count h={h} w0={w0}");
            assert_eq!(brute_force_count(&hex), closed_form, "brute h={h} w0={w0}");
        }
    }
}

#[test]
fn polyhedral_count_matches_brute_force_for_rational_slopes() {
    // Fractional slopes exercise the floor terms f0/f1 and the (d-1)/d
    // slack of constraints (10) and (12).
    let slopes = [(1, 2), (2, 1), (1, 3), (3, 2), (0, 1), (5, 3)];
    for &(n0, d0) in &slopes {
        for &(n1, d1) in &slopes {
            let delta0 = Rat::new(n0, d0);
            let delta1 = Rat::new(n1, d1);
            for h in 0..4 {
                let min = HexShape::min_width(delta0, delta1, h);
                for extra in 0..3 {
                    let w0 = min + extra;
                    let hex = HexShape::new(delta0, delta1, h, w0).unwrap();
                    assert_eq!(
                        hex.count_points(),
                        brute_force_count(&hex),
                        "δ0={n0}/{d0} δ1={n1}/{d1} h={h} w0={w0}"
                    );
                }
            }
        }
    }
}

#[test]
fn full_tile_count_scales_by_classical_widths() {
    // §3.7: a full hybrid tile holds 2(1 + 2h + h² + w0(h+1)) · w1 points —
    // the hexagon count times the classical widths. Verified through the
    // complete schedule construction on jacobi2d (δ0 = δ1 = 1) over a grid
    // of (h, w0, w1).
    let program = gallery::jacobi2d();
    for h in 0..3 {
        for w0 in 1..4 {
            for w1 in 1..5 {
                let params = TileParams::new(h, &[w0, w1]);
                let schedule = HybridSchedule::compute(&program, &params)
                    .unwrap_or_else(|e| panic!("h={h} w0={w0} w1={w1}: {e}"));
                let hex_count = (2 * (1 + 2 * h + h * h + w0 * (h + 1))) as u64;
                assert_eq!(schedule.hex().count_points(), hex_count);
                assert_eq!(
                    schedule.points_per_full_tile(),
                    hex_count * w1 as u64,
                    "h={h} w0={w0} w1={w1}"
                );
            }
        }
    }
}

#[test]
fn count_is_invariant_across_constructions() {
    // The constraint-based set and the Fig. 4 cone subtraction must count
    // the same points over a mixed parameter grid.
    for (d0, d1) in [(Rat::ONE, Rat::from(2)), (Rat::new(1, 2), Rat::ONE)] {
        for h in 0..4 {
            let min = HexShape::min_width(d0, d1, h);
            for extra in 0..2 {
                let hex = HexShape::new(d0, d1, h, min + extra).unwrap();
                assert_eq!(
                    hex.count_points() as usize,
                    hex.points_by_cone_subtraction().len(),
                    "δ0={d0} δ1={d1} h={h} extra={extra}"
                );
            }
        }
    }
}
