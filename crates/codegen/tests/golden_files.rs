//! Golden-file snapshots of the CUDA, pseudo-PTX, WGSL and HIP emitters.
//!
//! Emitter refactors must not silently change generated kernels: for a
//! fixed (stencil, tile size, workload, options) tuple the rendered text
//! is compared line by line against checked-in snapshots under
//! `tests/golden/`. Comparison normalizes line endings and trailing
//! whitespace, so formatting-only churn in the test harness cannot mask a
//! real emitter change.
//!
//! To regenerate after an *intentional* emitter change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p gpu_codegen --test golden_files
//! ```
//!
//! then review the diff like any other code change.

use gpu_codegen::backend::{Backend, BackendKind};
use gpu_codegen::cuda_emit::kernel_to_cuda;
use gpu_codegen::ptx_emit::core_tile_ptx;
use gpu_codegen::{generate_hybrid, CodegenOptions, LaunchPlan};
use hybrid_tiling::TileParams;
use stencil::{gallery, StencilProgram};

/// One pinned configuration: gallery stencil, tile size, and workload.
struct Snapshot {
    tag: &'static str,
    program: StencilProgram,
    params: TileParams,
    dims: Vec<usize>,
    steps: usize,
}

fn snapshots() -> Vec<Snapshot> {
    vec![
        Snapshot {
            tag: "jacobi2d_h1_w1x8",
            program: gallery::jacobi2d(),
            params: TileParams::new(1, &[1, 8]),
            dims: vec![20, 20],
            steps: 4,
        },
        Snapshot {
            tag: "fdtd2d_h2_w1x8",
            program: gallery::fdtd2d(),
            params: TileParams::new(2, &[1, 8]),
            dims: vec![20, 20],
            steps: 6,
        },
        Snapshot {
            tag: "laplacian3d_h0_w1x2x8",
            program: gallery::laplacian3d(),
            params: TileParams::new(0, &[1, 2, 8]),
            dims: vec![10, 10, 12],
            steps: 4,
        },
    ]
}

fn plan_for(s: &Snapshot) -> LaunchPlan {
    plan_for_opts(s, CodegenOptions::best())
}

fn plan_for_opts(s: &Snapshot, opts: CodegenOptions) -> LaunchPlan {
    generate_hybrid(&s.program, &s.params, &s.dims, s.steps, opts)
        .expect("snapshot configuration is schedulable")
}

/// The plan a given backend would emit for a snapshot: its own default
/// options (WGSL clamps ladder step (f) to (e); the rest use best()).
fn plan_for_backend(s: &Snapshot, backend: &dyn Backend) -> LaunchPlan {
    plan_for_opts(s, backend.default_options())
}

fn render_cuda(plan: &LaunchPlan) -> String {
    let mut out = String::new();
    for kernel in &plan.kernels {
        out.push_str(&kernel_to_cuda(kernel));
        out.push('\n');
    }
    out
}

fn render_ptx(plan: &LaunchPlan) -> String {
    let mut out = String::new();
    for kernel in &plan.kernels {
        let (text, stats) = core_tile_ptx(kernel, 4);
        out.push_str(&format!(
            "// kernel {}: {} loads, {} stores, {} arith\n{text}\n",
            kernel.name, stats.loads, stats.stores, stats.arith
        ));
    }
    out
}

/// Normalizes for comparison: CRLF -> LF, trailing whitespace stripped,
/// trailing blank lines dropped.
fn normalize(text: &str) -> Vec<String> {
    let mut lines: Vec<String> = text
        .replace("\r\n", "\n")
        .lines()
        .map(|l| l.trim_end().to_string())
        .collect();
    while lines.last().is_some_and(|l| l.is_empty()) {
        lines.pop();
    }
    lines
}

/// First difference between two normalized texts, rendered with context.
fn first_diff(expected: &[String], actual: &[String]) -> Option<String> {
    let n = expected.len().max(actual.len());
    for i in 0..n {
        let e = expected.get(i).map(String::as_str);
        let a = actual.get(i).map(String::as_str);
        if e != a {
            return Some(format!(
                "first difference at line {}:\n  golden: {}\n  actual: {}",
                i + 1,
                e.unwrap_or("<end of file>"),
                a.unwrap_or("<end of file>"),
            ));
        }
    }
    None
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    let expected = normalize(&expected);
    let actual = normalize(actual);
    if let Some(diff) = first_diff(&expected, &actual) {
        panic!(
            "{name} drifted from its golden snapshot ({} golden lines, {} actual).\n{diff}\n\
             If the emitter change is intentional, regenerate with\n\
             UPDATE_GOLDEN=1 cargo test -p gpu_codegen --test golden_files\n\
             and review the diff.",
            expected.len(),
            actual.len(),
        );
    }
}

#[test]
fn cuda_emission_matches_golden_files() {
    for s in snapshots() {
        let plan = plan_for(&s);
        check_golden(&format!("{}.cu", s.tag), &render_cuda(&plan));
    }
}

#[test]
fn ptx_emission_matches_golden_files() {
    for s in snapshots() {
        let plan = plan_for(&s);
        check_golden(&format!("{}.ptx", s.tag), &render_ptx(&plan));
    }
}

#[test]
fn wgsl_emission_matches_golden_files() {
    let backend = BackendKind::Wgsl.backend();
    for s in snapshots() {
        let plan = plan_for_backend(&s, backend);
        check_golden(&format!("{}.wgsl", s.tag), &backend.emit_plan(&plan));
    }
}

#[test]
fn hip_emission_matches_golden_files() {
    let backend = BackendKind::Hip.backend();
    for s in snapshots() {
        let plan = plan_for_backend(&s, backend);
        check_golden(&format!("{}.hip.cpp", s.tag), &backend.emit_plan(&plan));
    }
}

#[test]
fn cpu_emission_matches_golden_files() {
    let backend = BackendKind::Cpu.backend();
    for s in snapshots() {
        let plan = plan_for_backend(&s, backend);
        check_golden(&format!("{}.cpu.c", s.tag), &backend.emit_plan(&plan));
    }
}

/// The CUDA backend behind the trait is the same emitter as the direct
/// `kernel_to_cuda` path — byte-for-byte, per kernel and per plan.
#[test]
fn cuda_backend_trait_is_byte_identical_to_direct_emission() {
    let backend = BackendKind::Cuda.backend();
    for s in snapshots() {
        let plan = plan_for(&s);
        assert_eq!(backend.emit_plan(&plan), render_cuda(&plan), "{}", s.tag);
        for kernel in &plan.kernels {
            assert_eq!(backend.emit_kernel(kernel), kernel_to_cuda(kernel));
        }
    }
}

/// Emission is a pure function of (program, tile, workload, options,
/// backend): generating and rendering the same configuration twice
/// yields byte-identical source for every backend.
#[test]
fn emission_is_deterministic_for_every_backend() {
    for kind in BackendKind::ALL {
        let backend = kind.backend();
        for s in snapshots() {
            let a = backend.emit_plan(&plan_for_backend(&s, backend));
            let b = backend.emit_plan(&plan_for_backend(&s, backend));
            assert_eq!(a, b, "{kind} emission not deterministic for {}", s.tag);
            assert_eq!(
                backend.emit_aux(&plan_for_backend(&s, backend)),
                backend.emit_aux(&plan_for_backend(&s, backend)),
                "{kind} aux emission not deterministic for {}",
                s.tag
            );
        }
    }
}

#[test]
fn normalization_ignores_formatting_only_churn() {
    let a = normalize("x;\r\ny;  \n\n\n");
    let b = normalize("x;\ny;\n");
    assert_eq!(a, b);
    assert!(first_diff(&a, &b).is_none());
    let c = normalize("x;\nz;\n");
    let diff = first_diff(&a, &c).unwrap();
    assert!(diff.contains("line 2"), "{diff}");
}
