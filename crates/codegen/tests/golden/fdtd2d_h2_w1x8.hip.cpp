#include <hip/hip_runtime.h>

// block 8x1x1, 2520 bytes shared
__global__ __launch_bounds__(8) void hybrid_fdtd2d_phase0(float *g0 /* .. per field */, int p0, int p1) {
  __shared__ float s_ey[2][7][15];
  __shared__ float s_ex[2][7][15];
  __shared__ float s_hz[2][7][15];
  float r0 /* .. r5 */;
  int v0 = (blockIdx.x + p1);
  int v1 = ((p0 * 6) + -3);
  int v2 = (((v0 * 7) - (p0 * -1)) + -4);
  for (int v3 = 0; v3 < 3; v3 += 1) {
    if (v3 == 0) {
      for (int v5 = 0; v5 < 14; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g0[0][((v2 + -1) + pmod(floord(v6, 15), 7))][(((v3 * 8) + -6) + pmod(v6, 15))];
          s_ey[0][pmod(floord(v6, 15), 7)][pmod(v6, 15)] = r0;
        }
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g1[0][((v2 + -1) + pmod(floord(v6, 15), 7))][(((v3 * 8) + -6) + pmod(v6, 15))];
          s_ex[0][pmod(floord(v6, 15), 7)][pmod(v6, 15)] = r0;
        }
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g2[0][((v2 + -1) + pmod(floord(v6, 15), 7))][(((v3 * 8) + -6) + pmod(v6, 15))];
          s_hz[0][pmod(floord(v6, 15), 7)][pmod(v6, 15)] = r0;
        }
      }
      for (int v5 = 0; v5 < 14; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g0[1][((v2 + -1) + pmod(floord(v6, 15), 7))][(((v3 * 8) + -6) + pmod(v6, 15))];
          s_ey[1][pmod(floord(v6, 15), 7)][pmod(v6, 15)] = r0;
        }
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g1[1][((v2 + -1) + pmod(floord(v6, 15), 7))][(((v3 * 8) + -6) + pmod(v6, 15))];
          s_ex[1][pmod(floord(v6, 15), 7)][pmod(v6, 15)] = r0;
        }
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g2[1][((v2 + -1) + pmod(floord(v6, 15), 7))][(((v3 * 8) + -6) + pmod(v6, 15))];
          s_hz[1][pmod(floord(v6, 15), 7)][pmod(v6, 15)] = r0;
        }
      }
      __syncthreads();
    } else {
      for (int v5 = 0; v5 < 7; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (v6 < 49) {
          r0 = s_ey[0][pmod(floord(v6, 7), 7)][(pmod(v6, 7) + 8)];
          s_ey[0][pmod(floord(v6, 7), 7)][pmod(v6, 7)] = r0;
        }
        if (v6 < 49) {
          r0 = s_ex[0][pmod(floord(v6, 7), 7)][(pmod(v6, 7) + 8)];
          s_ex[0][pmod(floord(v6, 7), 7)][pmod(v6, 7)] = r0;
        }
        if (v6 < 49) {
          r0 = s_hz[0][pmod(floord(v6, 7), 7)][(pmod(v6, 7) + 8)];
          s_hz[0][pmod(floord(v6, 7), 7)][pmod(v6, 7)] = r0;
        }
      }
      for (int v5 = 0; v5 < 7; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (v6 < 49) {
          r0 = s_ey[1][pmod(floord(v6, 7), 7)][(pmod(v6, 7) + 8)];
          s_ey[1][pmod(floord(v6, 7), 7)][pmod(v6, 7)] = r0;
        }
        if (v6 < 49) {
          r0 = s_ex[1][pmod(floord(v6, 7), 7)][(pmod(v6, 7) + 8)];
          s_ex[1][pmod(floord(v6, 7), 7)][pmod(v6, 7)] = r0;
        }
        if (v6 < 49) {
          r0 = s_hz[1][pmod(floord(v6, 7), 7)][(pmod(v6, 7) + 8)];
          s_hz[1][pmod(floord(v6, 7), 7)][pmod(v6, 7)] = r0;
        }
      }
      __syncthreads();
      for (int v5 = 0; v5 < 7; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g0[0][((v2 + -1) + pmod(floord(v6, 8), 7))][(((v3 * 8) + -6) + (pmod(v6, 8) + 7))];
          s_ey[0][pmod(floord(v6, 8), 7)][(pmod(v6, 8) + 7)] = r0;
        }
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g1[0][((v2 + -1) + pmod(floord(v6, 8), 7))][(((v3 * 8) + -6) + (pmod(v6, 8) + 7))];
          s_ex[0][pmod(floord(v6, 8), 7)][(pmod(v6, 8) + 7)] = r0;
        }
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g2[0][((v2 + -1) + pmod(floord(v6, 8), 7))][(((v3 * 8) + -6) + (pmod(v6, 8) + 7))];
          s_hz[0][pmod(floord(v6, 8), 7)][(pmod(v6, 8) + 7)] = r0;
        }
      }
      for (int v5 = 0; v5 < 7; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g0[1][((v2 + -1) + pmod(floord(v6, 8), 7))][(((v3 * 8) + -6) + (pmod(v6, 8) + 7))];
          s_ey[1][pmod(floord(v6, 8), 7)][(pmod(v6, 8) + 7)] = r0;
        }
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g1[1][((v2 + -1) + pmod(floord(v6, 8), 7))][(((v3 * 8) + -6) + (pmod(v6, 8) + 7))];
          s_ex[1][pmod(floord(v6, 8), 7)][(pmod(v6, 8) + 7)] = r0;
        }
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g2[1][((v2 + -1) + pmod(floord(v6, 8), 7))][(((v3 * 8) + -6) + (pmod(v6, 8) + 7))];
          s_hz[1][pmod(floord(v6, 8), 7)][(pmod(v6, 8) + 7)] = r0;
        }
      }
      __syncthreads();
    }
    if ((((((0 <= v1 && (v1 + 5) <= 17) && 1 <= v2) && (v2 + 4) <= 18) && 6 <= (v3 * 8)) && ((v3 * 8) + 7) <= 18)) {
      r1 = s_ey[pmod(floord(v1, 3), 2)][2][(threadIdx.x + 6)];
      r2 = s_hz[pmod(floord(v1, 3), 2)][2][(threadIdx.x + 6)];
      r3 = s_hz[pmod(floord(v1, 3), 2)][1][(threadIdx.x + 6)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord(v1, 3) + 1), 2)][2][(threadIdx.x + 6)] = r0;
      g0[pmod((floord(v1, 3) + 1), 2)][(v2 + 1)][((v3 * 8) + threadIdx.x)] = r0;
      r1 = s_ey[pmod(floord(v1, 3), 2)][3][(threadIdx.x + 6)];
      r2 = s_hz[pmod(floord(v1, 3), 2)][3][(threadIdx.x + 6)];
      r3 = s_hz[pmod(floord(v1, 3), 2)][2][(threadIdx.x + 6)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord(v1, 3) + 1), 2)][3][(threadIdx.x + 6)] = r0;
      g0[pmod((floord(v1, 3) + 1), 2)][(v2 + 2)][((v3 * 8) + threadIdx.x)] = r0;
      __syncthreads();
      r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][1][(threadIdx.x + 5)];
      r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][1][(threadIdx.x + 5)];
      r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][1][(threadIdx.x + 4)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][1][(threadIdx.x + 5)] = r0;
      g1[pmod((floord((v1 + 1), 3) + 1), 2)][v2][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][2][(threadIdx.x + 5)];
      r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][2][(threadIdx.x + 5)];
      r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][2][(threadIdx.x + 4)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][2][(threadIdx.x + 5)] = r0;
      g1[pmod((floord((v1 + 1), 3) + 1), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][3][(threadIdx.x + 5)];
      r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][3][(threadIdx.x + 5)];
      r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][3][(threadIdx.x + 4)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][3][(threadIdx.x + 5)] = r0;
      g1[pmod((floord((v1 + 1), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][4][(threadIdx.x + 5)];
      r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][4][(threadIdx.x + 5)];
      r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][4][(threadIdx.x + 4)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][4][(threadIdx.x + 5)] = r0;
      g1[pmod((floord((v1 + 1), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      __syncthreads();
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][1][(threadIdx.x + 4)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][1][(threadIdx.x + 5)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][1][(threadIdx.x + 4)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 4)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][1][(threadIdx.x + 4)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][1][(threadIdx.x + 4)] = r0;
      g2[pmod((floord((v1 + 2), 3) + 1), 2)][v2][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][2][(threadIdx.x + 4)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 5)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 4)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 4)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 4)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 4)] = r0;
      g2[pmod((floord((v1 + 2), 3) + 1), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][3][(threadIdx.x + 4)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 5)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 4)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 4)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 4)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 4)] = r0;
      g2[pmod((floord((v1 + 2), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][4][(threadIdx.x + 4)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 5)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 4)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 4)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 4)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 4)] = r0;
      g2[pmod((floord((v1 + 2), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][5][(threadIdx.x + 4)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 5)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 4)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][6][(threadIdx.x + 4)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 4)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 4)] = r0;
      g2[pmod((floord((v1 + 2), 3) + 1), 2)][(v2 + 4)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      __syncthreads();
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][1][(threadIdx.x + 3)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][1][(threadIdx.x + 3)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][0][(threadIdx.x + 3)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][1][(threadIdx.x + 3)] = r0;
      g0[pmod((floord((v1 + 3), 3) + 1), 2)][v2][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][2][(threadIdx.x + 3)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][2][(threadIdx.x + 3)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][1][(threadIdx.x + 3)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][2][(threadIdx.x + 3)] = r0;
      g0[pmod((floord((v1 + 3), 3) + 1), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][3][(threadIdx.x + 3)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][3][(threadIdx.x + 3)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][2][(threadIdx.x + 3)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][3][(threadIdx.x + 3)] = r0;
      g0[pmod((floord((v1 + 3), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][4][(threadIdx.x + 3)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][4][(threadIdx.x + 3)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][3][(threadIdx.x + 3)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][4][(threadIdx.x + 3)] = r0;
      g0[pmod((floord((v1 + 3), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][5][(threadIdx.x + 3)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][5][(threadIdx.x + 3)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][4][(threadIdx.x + 3)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][5][(threadIdx.x + 3)] = r0;
      g0[pmod((floord((v1 + 3), 3) + 1), 2)][(v2 + 4)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      __syncthreads();
      r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][2][(threadIdx.x + 2)];
      r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][2][(threadIdx.x + 2)];
      r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][2][(threadIdx.x + 1)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][2][(threadIdx.x + 2)] = r0;
      g1[pmod((floord((v1 + 4), 3) + 1), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -4)] = r0;
      r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][3][(threadIdx.x + 2)];
      r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][3][(threadIdx.x + 2)];
      r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][3][(threadIdx.x + 1)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][3][(threadIdx.x + 2)] = r0;
      g1[pmod((floord((v1 + 4), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -4)] = r0;
      r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][4][(threadIdx.x + 2)];
      r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][4][(threadIdx.x + 2)];
      r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][4][(threadIdx.x + 1)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][4][(threadIdx.x + 2)] = r0;
      g1[pmod((floord((v1 + 4), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -4)] = r0;
      __syncthreads();
      r1 = s_hz[pmod(floord((v1 + 5), 3), 2)][3][(threadIdx.x + 1)];
      r2 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][3][(threadIdx.x + 2)];
      r3 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][3][(threadIdx.x + 1)];
      r4 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 1)];
      r5 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][3][(threadIdx.x + 1)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 5), 3) + 1), 2)][3][(threadIdx.x + 1)] = r0;
      g2[pmod((floord((v1 + 5), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -5)] = r0;
      r1 = s_hz[pmod(floord((v1 + 5), 3), 2)][4][(threadIdx.x + 1)];
      r2 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 2)];
      r3 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 1)];
      r4 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][5][(threadIdx.x + 1)];
      r5 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 1)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 1)] = r0;
      g2[pmod((floord((v1 + 5), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -5)] = r0;
      __syncthreads();
    } else {
      if ((((0 <= v1 && v1 <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= ((v3 * 8) + threadIdx.x) && ((v3 * 8) + threadIdx.x) <= 18))) {
        r1 = s_ey[pmod(floord(v1, 3), 2)][2][(threadIdx.x + 6)];
        r2 = s_hz[pmod(floord(v1, 3), 2)][2][(threadIdx.x + 6)];
        r3 = s_hz[pmod(floord(v1, 3), 2)][1][(threadIdx.x + 6)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord(v1, 3) + 1), 2)][2][(threadIdx.x + 6)] = r0;
        g0[pmod((floord(v1, 3) + 1), 2)][(v2 + 1)][((v3 * 8) + threadIdx.x)] = r0;
      }
      if ((((0 <= v1 && v1 <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= ((v3 * 8) + threadIdx.x) && ((v3 * 8) + threadIdx.x) <= 18))) {
        r1 = s_ey[pmod(floord(v1, 3), 2)][3][(threadIdx.x + 6)];
        r2 = s_hz[pmod(floord(v1, 3), 2)][3][(threadIdx.x + 6)];
        r3 = s_hz[pmod(floord(v1, 3), 2)][2][(threadIdx.x + 6)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord(v1, 3) + 1), 2)][3][(threadIdx.x + 6)] = r0;
        g0[pmod((floord(v1, 3) + 1), 2)][(v2 + 2)][((v3 * 8) + threadIdx.x)] = r0;
      }
      __syncthreads();
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 17) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -1) && (((v3 * 8) + threadIdx.x) + -1) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][1][(threadIdx.x + 5)];
        r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][1][(threadIdx.x + 5)];
        r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][1][(threadIdx.x + 4)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][1][(threadIdx.x + 5)] = r0;
        g1[pmod((floord((v1 + 1), 3) + 1), 2)][v2][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -1) && (((v3 * 8) + threadIdx.x) + -1) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][2][(threadIdx.x + 5)];
        r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][2][(threadIdx.x + 5)];
        r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][2][(threadIdx.x + 4)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][2][(threadIdx.x + 5)] = r0;
        g1[pmod((floord((v1 + 1), 3) + 1), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -1) && (((v3 * 8) + threadIdx.x) + -1) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][3][(threadIdx.x + 5)];
        r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][3][(threadIdx.x + 5)];
        r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][3][(threadIdx.x + 4)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][3][(threadIdx.x + 5)] = r0;
        g1[pmod((floord((v1 + 1), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -1) && (((v3 * 8) + threadIdx.x) + -1) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][4][(threadIdx.x + 5)];
        r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][4][(threadIdx.x + 5)];
        r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][4][(threadIdx.x + 4)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][4][(threadIdx.x + 5)] = r0;
        g1[pmod((floord((v1 + 1), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      }
      __syncthreads();
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][1][(threadIdx.x + 4)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][1][(threadIdx.x + 5)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][1][(threadIdx.x + 4)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 4)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][1][(threadIdx.x + 4)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][1][(threadIdx.x + 4)] = r0;
        g2[pmod((floord((v1 + 2), 3) + 1), 2)][v2][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][2][(threadIdx.x + 4)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 5)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 4)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 4)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 4)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 4)] = r0;
        g2[pmod((floord((v1 + 2), 3) + 1), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][3][(threadIdx.x + 4)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 5)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 4)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 4)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 4)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 4)] = r0;
        g2[pmod((floord((v1 + 2), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][4][(threadIdx.x + 4)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 5)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 4)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 4)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 4)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 4)] = r0;
        g2[pmod((floord((v1 + 2), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= (v2 + 4) && (v2 + 4) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][5][(threadIdx.x + 4)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 5)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 4)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][6][(threadIdx.x + 4)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 4)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 4)] = r0;
        g2[pmod((floord((v1 + 2), 3) + 1), 2)][(v2 + 4)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      __syncthreads();
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -3) && (((v3 * 8) + threadIdx.x) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][1][(threadIdx.x + 3)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][1][(threadIdx.x + 3)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][0][(threadIdx.x + 3)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][1][(threadIdx.x + 3)] = r0;
        g0[pmod((floord((v1 + 3), 3) + 1), 2)][v2][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -3) && (((v3 * 8) + threadIdx.x) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][2][(threadIdx.x + 3)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][2][(threadIdx.x + 3)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][1][(threadIdx.x + 3)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][2][(threadIdx.x + 3)] = r0;
        g0[pmod((floord((v1 + 3), 3) + 1), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -3) && (((v3 * 8) + threadIdx.x) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][3][(threadIdx.x + 3)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][3][(threadIdx.x + 3)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][2][(threadIdx.x + 3)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][3][(threadIdx.x + 3)] = r0;
        g0[pmod((floord((v1 + 3), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -3) && (((v3 * 8) + threadIdx.x) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][4][(threadIdx.x + 3)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][4][(threadIdx.x + 3)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][3][(threadIdx.x + 3)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][4][(threadIdx.x + 3)] = r0;
        g0[pmod((floord((v1 + 3), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= (v2 + 4) && (v2 + 4) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -3) && (((v3 * 8) + threadIdx.x) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][5][(threadIdx.x + 3)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][5][(threadIdx.x + 3)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][4][(threadIdx.x + 3)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][5][(threadIdx.x + 3)] = r0;
        g0[pmod((floord((v1 + 3), 3) + 1), 2)][(v2 + 4)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      }
      __syncthreads();
      if ((((0 <= (v1 + 4) && (v1 + 4) <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -4) && (((v3 * 8) + threadIdx.x) + -4) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][2][(threadIdx.x + 2)];
        r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][2][(threadIdx.x + 2)];
        r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][2][(threadIdx.x + 1)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][2][(threadIdx.x + 2)] = r0;
        g1[pmod((floord((v1 + 4), 3) + 1), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -4)] = r0;
      }
      if ((((0 <= (v1 + 4) && (v1 + 4) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -4) && (((v3 * 8) + threadIdx.x) + -4) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][3][(threadIdx.x + 2)];
        r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][3][(threadIdx.x + 2)];
        r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][3][(threadIdx.x + 1)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][3][(threadIdx.x + 2)] = r0;
        g1[pmod((floord((v1 + 4), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -4)] = r0;
      }
      if ((((0 <= (v1 + 4) && (v1 + 4) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -4) && (((v3 * 8) + threadIdx.x) + -4) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][4][(threadIdx.x + 2)];
        r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][4][(threadIdx.x + 2)];
        r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][4][(threadIdx.x + 1)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][4][(threadIdx.x + 2)] = r0;
        g1[pmod((floord((v1 + 4), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -4)] = r0;
      }
      __syncthreads();
      if ((((0 <= (v1 + 5) && (v1 + 5) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -5) && (((v3 * 8) + threadIdx.x) + -5) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 5), 3), 2)][3][(threadIdx.x + 1)];
        r2 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][3][(threadIdx.x + 2)];
        r3 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][3][(threadIdx.x + 1)];
        r4 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 1)];
        r5 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][3][(threadIdx.x + 1)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 5), 3) + 1), 2)][3][(threadIdx.x + 1)] = r0;
        g2[pmod((floord((v1 + 5), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -5)] = r0;
      }
      if ((((0 <= (v1 + 5) && (v1 + 5) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -5) && (((v3 * 8) + threadIdx.x) + -5) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 5), 3), 2)][4][(threadIdx.x + 1)];
        r2 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 2)];
        r3 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 1)];
        r4 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][5][(threadIdx.x + 1)];
        r5 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 1)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 1)] = r0;
        g2[pmod((floord((v1 + 5), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -5)] = r0;
      }
      __syncthreads();
    }
  }
}

// block 8x1x1, 2520 bytes shared
__global__ __launch_bounds__(8) void hybrid_fdtd2d_phase1(float *g0 /* .. per field */, int p0, int p1) {
  __shared__ float s_ey[2][7][15];
  __shared__ float s_ex[2][7][15];
  __shared__ float s_hz[2][7][15];
  float r0 /* .. r5 */;
  int v0 = (blockIdx.x + p1);
  int v1 = (p0 * 6);
  int v2 = ((v0 * 7) - (p0 * -1));
  for (int v3 = 0; v3 < 3; v3 += 1) {
    if (v3 == 0) {
      for (int v5 = 0; v5 < 14; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g0[0][((v2 + -1) + pmod(floord(v6, 15), 7))][(((v3 * 8) + -6) + pmod(v6, 15))];
          s_ey[0][pmod(floord(v6, 15), 7)][pmod(v6, 15)] = r0;
        }
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g1[0][((v2 + -1) + pmod(floord(v6, 15), 7))][(((v3 * 8) + -6) + pmod(v6, 15))];
          s_ex[0][pmod(floord(v6, 15), 7)][pmod(v6, 15)] = r0;
        }
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g2[0][((v2 + -1) + pmod(floord(v6, 15), 7))][(((v3 * 8) + -6) + pmod(v6, 15))];
          s_hz[0][pmod(floord(v6, 15), 7)][pmod(v6, 15)] = r0;
        }
      }
      for (int v5 = 0; v5 < 14; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g0[1][((v2 + -1) + pmod(floord(v6, 15), 7))][(((v3 * 8) + -6) + pmod(v6, 15))];
          s_ey[1][pmod(floord(v6, 15), 7)][pmod(v6, 15)] = r0;
        }
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g1[1][((v2 + -1) + pmod(floord(v6, 15), 7))][(((v3 * 8) + -6) + pmod(v6, 15))];
          s_ex[1][pmod(floord(v6, 15), 7)][pmod(v6, 15)] = r0;
        }
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g2[1][((v2 + -1) + pmod(floord(v6, 15), 7))][(((v3 * 8) + -6) + pmod(v6, 15))];
          s_hz[1][pmod(floord(v6, 15), 7)][pmod(v6, 15)] = r0;
        }
      }
      __syncthreads();
    } else {
      for (int v5 = 0; v5 < 7; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (v6 < 49) {
          r0 = s_ey[0][pmod(floord(v6, 7), 7)][(pmod(v6, 7) + 8)];
          s_ey[0][pmod(floord(v6, 7), 7)][pmod(v6, 7)] = r0;
        }
        if (v6 < 49) {
          r0 = s_ex[0][pmod(floord(v6, 7), 7)][(pmod(v6, 7) + 8)];
          s_ex[0][pmod(floord(v6, 7), 7)][pmod(v6, 7)] = r0;
        }
        if (v6 < 49) {
          r0 = s_hz[0][pmod(floord(v6, 7), 7)][(pmod(v6, 7) + 8)];
          s_hz[0][pmod(floord(v6, 7), 7)][pmod(v6, 7)] = r0;
        }
      }
      for (int v5 = 0; v5 < 7; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (v6 < 49) {
          r0 = s_ey[1][pmod(floord(v6, 7), 7)][(pmod(v6, 7) + 8)];
          s_ey[1][pmod(floord(v6, 7), 7)][pmod(v6, 7)] = r0;
        }
        if (v6 < 49) {
          r0 = s_ex[1][pmod(floord(v6, 7), 7)][(pmod(v6, 7) + 8)];
          s_ex[1][pmod(floord(v6, 7), 7)][pmod(v6, 7)] = r0;
        }
        if (v6 < 49) {
          r0 = s_hz[1][pmod(floord(v6, 7), 7)][(pmod(v6, 7) + 8)];
          s_hz[1][pmod(floord(v6, 7), 7)][pmod(v6, 7)] = r0;
        }
      }
      __syncthreads();
      for (int v5 = 0; v5 < 7; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g0[0][((v2 + -1) + pmod(floord(v6, 8), 7))][(((v3 * 8) + -6) + (pmod(v6, 8) + 7))];
          s_ey[0][pmod(floord(v6, 8), 7)][(pmod(v6, 8) + 7)] = r0;
        }
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g1[0][((v2 + -1) + pmod(floord(v6, 8), 7))][(((v3 * 8) + -6) + (pmod(v6, 8) + 7))];
          s_ex[0][pmod(floord(v6, 8), 7)][(pmod(v6, 8) + 7)] = r0;
        }
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g2[0][((v2 + -1) + pmod(floord(v6, 8), 7))][(((v3 * 8) + -6) + (pmod(v6, 8) + 7))];
          s_hz[0][pmod(floord(v6, 8), 7)][(pmod(v6, 8) + 7)] = r0;
        }
      }
      for (int v5 = 0; v5 < 7; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g0[1][((v2 + -1) + pmod(floord(v6, 8), 7))][(((v3 * 8) + -6) + (pmod(v6, 8) + 7))];
          s_ey[1][pmod(floord(v6, 8), 7)][(pmod(v6, 8) + 7)] = r0;
        }
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g1[1][((v2 + -1) + pmod(floord(v6, 8), 7))][(((v3 * 8) + -6) + (pmod(v6, 8) + 7))];
          s_ex[1][pmod(floord(v6, 8), 7)][(pmod(v6, 8) + 7)] = r0;
        }
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g2[1][((v2 + -1) + pmod(floord(v6, 8), 7))][(((v3 * 8) + -6) + (pmod(v6, 8) + 7))];
          s_hz[1][pmod(floord(v6, 8), 7)][(pmod(v6, 8) + 7)] = r0;
        }
      }
      __syncthreads();
    }
    if ((((((0 <= v1 && (v1 + 5) <= 17) && 1 <= v2) && (v2 + 4) <= 18) && 6 <= (v3 * 8)) && ((v3 * 8) + 7) <= 18)) {
      r1 = s_ey[pmod(floord(v1, 3), 2)][2][(threadIdx.x + 6)];
      r2 = s_hz[pmod(floord(v1, 3), 2)][2][(threadIdx.x + 6)];
      r3 = s_hz[pmod(floord(v1, 3), 2)][1][(threadIdx.x + 6)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord(v1, 3) + 1), 2)][2][(threadIdx.x + 6)] = r0;
      g0[pmod((floord(v1, 3) + 1), 2)][(v2 + 1)][((v3 * 8) + threadIdx.x)] = r0;
      r1 = s_ey[pmod(floord(v1, 3), 2)][3][(threadIdx.x + 6)];
      r2 = s_hz[pmod(floord(v1, 3), 2)][3][(threadIdx.x + 6)];
      r3 = s_hz[pmod(floord(v1, 3), 2)][2][(threadIdx.x + 6)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord(v1, 3) + 1), 2)][3][(threadIdx.x + 6)] = r0;
      g0[pmod((floord(v1, 3) + 1), 2)][(v2 + 2)][((v3 * 8) + threadIdx.x)] = r0;
      __syncthreads();
      r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][1][(threadIdx.x + 5)];
      r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][1][(threadIdx.x + 5)];
      r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][1][(threadIdx.x + 4)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][1][(threadIdx.x + 5)] = r0;
      g1[pmod((floord((v1 + 1), 3) + 1), 2)][v2][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][2][(threadIdx.x + 5)];
      r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][2][(threadIdx.x + 5)];
      r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][2][(threadIdx.x + 4)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][2][(threadIdx.x + 5)] = r0;
      g1[pmod((floord((v1 + 1), 3) + 1), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][3][(threadIdx.x + 5)];
      r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][3][(threadIdx.x + 5)];
      r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][3][(threadIdx.x + 4)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][3][(threadIdx.x + 5)] = r0;
      g1[pmod((floord((v1 + 1), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][4][(threadIdx.x + 5)];
      r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][4][(threadIdx.x + 5)];
      r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][4][(threadIdx.x + 4)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][4][(threadIdx.x + 5)] = r0;
      g1[pmod((floord((v1 + 1), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      __syncthreads();
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][1][(threadIdx.x + 4)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][1][(threadIdx.x + 5)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][1][(threadIdx.x + 4)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 4)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][1][(threadIdx.x + 4)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][1][(threadIdx.x + 4)] = r0;
      g2[pmod((floord((v1 + 2), 3) + 1), 2)][v2][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][2][(threadIdx.x + 4)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 5)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 4)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 4)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 4)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 4)] = r0;
      g2[pmod((floord((v1 + 2), 3) + 1), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][3][(threadIdx.x + 4)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 5)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 4)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 4)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 4)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 4)] = r0;
      g2[pmod((floord((v1 + 2), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][4][(threadIdx.x + 4)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 5)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 4)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 4)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 4)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 4)] = r0;
      g2[pmod((floord((v1 + 2), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][5][(threadIdx.x + 4)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 5)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 4)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][6][(threadIdx.x + 4)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 4)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 4)] = r0;
      g2[pmod((floord((v1 + 2), 3) + 1), 2)][(v2 + 4)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      __syncthreads();
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][1][(threadIdx.x + 3)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][1][(threadIdx.x + 3)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][0][(threadIdx.x + 3)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][1][(threadIdx.x + 3)] = r0;
      g0[pmod((floord((v1 + 3), 3) + 1), 2)][v2][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][2][(threadIdx.x + 3)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][2][(threadIdx.x + 3)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][1][(threadIdx.x + 3)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][2][(threadIdx.x + 3)] = r0;
      g0[pmod((floord((v1 + 3), 3) + 1), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][3][(threadIdx.x + 3)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][3][(threadIdx.x + 3)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][2][(threadIdx.x + 3)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][3][(threadIdx.x + 3)] = r0;
      g0[pmod((floord((v1 + 3), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][4][(threadIdx.x + 3)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][4][(threadIdx.x + 3)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][3][(threadIdx.x + 3)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][4][(threadIdx.x + 3)] = r0;
      g0[pmod((floord((v1 + 3), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][5][(threadIdx.x + 3)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][5][(threadIdx.x + 3)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][4][(threadIdx.x + 3)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][5][(threadIdx.x + 3)] = r0;
      g0[pmod((floord((v1 + 3), 3) + 1), 2)][(v2 + 4)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      __syncthreads();
      r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][2][(threadIdx.x + 2)];
      r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][2][(threadIdx.x + 2)];
      r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][2][(threadIdx.x + 1)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][2][(threadIdx.x + 2)] = r0;
      g1[pmod((floord((v1 + 4), 3) + 1), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -4)] = r0;
      r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][3][(threadIdx.x + 2)];
      r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][3][(threadIdx.x + 2)];
      r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][3][(threadIdx.x + 1)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][3][(threadIdx.x + 2)] = r0;
      g1[pmod((floord((v1 + 4), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -4)] = r0;
      r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][4][(threadIdx.x + 2)];
      r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][4][(threadIdx.x + 2)];
      r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][4][(threadIdx.x + 1)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][4][(threadIdx.x + 2)] = r0;
      g1[pmod((floord((v1 + 4), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -4)] = r0;
      __syncthreads();
      r1 = s_hz[pmod(floord((v1 + 5), 3), 2)][3][(threadIdx.x + 1)];
      r2 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][3][(threadIdx.x + 2)];
      r3 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][3][(threadIdx.x + 1)];
      r4 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 1)];
      r5 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][3][(threadIdx.x + 1)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 5), 3) + 1), 2)][3][(threadIdx.x + 1)] = r0;
      g2[pmod((floord((v1 + 5), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -5)] = r0;
      r1 = s_hz[pmod(floord((v1 + 5), 3), 2)][4][(threadIdx.x + 1)];
      r2 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 2)];
      r3 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 1)];
      r4 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][5][(threadIdx.x + 1)];
      r5 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 1)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 1)] = r0;
      g2[pmod((floord((v1 + 5), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -5)] = r0;
      __syncthreads();
    } else {
      if ((((0 <= v1 && v1 <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= ((v3 * 8) + threadIdx.x) && ((v3 * 8) + threadIdx.x) <= 18))) {
        r1 = s_ey[pmod(floord(v1, 3), 2)][2][(threadIdx.x + 6)];
        r2 = s_hz[pmod(floord(v1, 3), 2)][2][(threadIdx.x + 6)];
        r3 = s_hz[pmod(floord(v1, 3), 2)][1][(threadIdx.x + 6)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord(v1, 3) + 1), 2)][2][(threadIdx.x + 6)] = r0;
        g0[pmod((floord(v1, 3) + 1), 2)][(v2 + 1)][((v3 * 8) + threadIdx.x)] = r0;
      }
      if ((((0 <= v1 && v1 <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= ((v3 * 8) + threadIdx.x) && ((v3 * 8) + threadIdx.x) <= 18))) {
        r1 = s_ey[pmod(floord(v1, 3), 2)][3][(threadIdx.x + 6)];
        r2 = s_hz[pmod(floord(v1, 3), 2)][3][(threadIdx.x + 6)];
        r3 = s_hz[pmod(floord(v1, 3), 2)][2][(threadIdx.x + 6)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord(v1, 3) + 1), 2)][3][(threadIdx.x + 6)] = r0;
        g0[pmod((floord(v1, 3) + 1), 2)][(v2 + 2)][((v3 * 8) + threadIdx.x)] = r0;
      }
      __syncthreads();
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 17) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -1) && (((v3 * 8) + threadIdx.x) + -1) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][1][(threadIdx.x + 5)];
        r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][1][(threadIdx.x + 5)];
        r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][1][(threadIdx.x + 4)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][1][(threadIdx.x + 5)] = r0;
        g1[pmod((floord((v1 + 1), 3) + 1), 2)][v2][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -1) && (((v3 * 8) + threadIdx.x) + -1) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][2][(threadIdx.x + 5)];
        r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][2][(threadIdx.x + 5)];
        r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][2][(threadIdx.x + 4)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][2][(threadIdx.x + 5)] = r0;
        g1[pmod((floord((v1 + 1), 3) + 1), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -1) && (((v3 * 8) + threadIdx.x) + -1) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][3][(threadIdx.x + 5)];
        r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][3][(threadIdx.x + 5)];
        r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][3][(threadIdx.x + 4)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][3][(threadIdx.x + 5)] = r0;
        g1[pmod((floord((v1 + 1), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -1) && (((v3 * 8) + threadIdx.x) + -1) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][4][(threadIdx.x + 5)];
        r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][4][(threadIdx.x + 5)];
        r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][4][(threadIdx.x + 4)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][4][(threadIdx.x + 5)] = r0;
        g1[pmod((floord((v1 + 1), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      }
      __syncthreads();
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][1][(threadIdx.x + 4)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][1][(threadIdx.x + 5)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][1][(threadIdx.x + 4)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 4)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][1][(threadIdx.x + 4)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][1][(threadIdx.x + 4)] = r0;
        g2[pmod((floord((v1 + 2), 3) + 1), 2)][v2][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][2][(threadIdx.x + 4)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 5)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 4)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 4)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 4)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][2][(threadIdx.x + 4)] = r0;
        g2[pmod((floord((v1 + 2), 3) + 1), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][3][(threadIdx.x + 4)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 5)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 4)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 4)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 4)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][3][(threadIdx.x + 4)] = r0;
        g2[pmod((floord((v1 + 2), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][4][(threadIdx.x + 4)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 5)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 4)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 4)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 4)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][4][(threadIdx.x + 4)] = r0;
        g2[pmod((floord((v1 + 2), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= (v2 + 4) && (v2 + 4) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][5][(threadIdx.x + 4)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 5)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 4)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][6][(threadIdx.x + 4)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 4)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][5][(threadIdx.x + 4)] = r0;
        g2[pmod((floord((v1 + 2), 3) + 1), 2)][(v2 + 4)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      __syncthreads();
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -3) && (((v3 * 8) + threadIdx.x) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][1][(threadIdx.x + 3)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][1][(threadIdx.x + 3)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][0][(threadIdx.x + 3)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][1][(threadIdx.x + 3)] = r0;
        g0[pmod((floord((v1 + 3), 3) + 1), 2)][v2][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -3) && (((v3 * 8) + threadIdx.x) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][2][(threadIdx.x + 3)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][2][(threadIdx.x + 3)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][1][(threadIdx.x + 3)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][2][(threadIdx.x + 3)] = r0;
        g0[pmod((floord((v1 + 3), 3) + 1), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -3) && (((v3 * 8) + threadIdx.x) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][3][(threadIdx.x + 3)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][3][(threadIdx.x + 3)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][2][(threadIdx.x + 3)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][3][(threadIdx.x + 3)] = r0;
        g0[pmod((floord((v1 + 3), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -3) && (((v3 * 8) + threadIdx.x) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][4][(threadIdx.x + 3)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][4][(threadIdx.x + 3)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][3][(threadIdx.x + 3)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][4][(threadIdx.x + 3)] = r0;
        g0[pmod((floord((v1 + 3), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= (v2 + 4) && (v2 + 4) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -3) && (((v3 * 8) + threadIdx.x) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][5][(threadIdx.x + 3)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][5][(threadIdx.x + 3)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][4][(threadIdx.x + 3)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][5][(threadIdx.x + 3)] = r0;
        g0[pmod((floord((v1 + 3), 3) + 1), 2)][(v2 + 4)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      }
      __syncthreads();
      if ((((0 <= (v1 + 4) && (v1 + 4) <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -4) && (((v3 * 8) + threadIdx.x) + -4) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][2][(threadIdx.x + 2)];
        r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][2][(threadIdx.x + 2)];
        r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][2][(threadIdx.x + 1)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][2][(threadIdx.x + 2)] = r0;
        g1[pmod((floord((v1 + 4), 3) + 1), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -4)] = r0;
      }
      if ((((0 <= (v1 + 4) && (v1 + 4) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -4) && (((v3 * 8) + threadIdx.x) + -4) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][3][(threadIdx.x + 2)];
        r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][3][(threadIdx.x + 2)];
        r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][3][(threadIdx.x + 1)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][3][(threadIdx.x + 2)] = r0;
        g1[pmod((floord((v1 + 4), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -4)] = r0;
      }
      if ((((0 <= (v1 + 4) && (v1 + 4) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -4) && (((v3 * 8) + threadIdx.x) + -4) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][4][(threadIdx.x + 2)];
        r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][4][(threadIdx.x + 2)];
        r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][4][(threadIdx.x + 1)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][4][(threadIdx.x + 2)] = r0;
        g1[pmod((floord((v1 + 4), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -4)] = r0;
      }
      __syncthreads();
      if ((((0 <= (v1 + 5) && (v1 + 5) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -5) && (((v3 * 8) + threadIdx.x) + -5) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 5), 3), 2)][3][(threadIdx.x + 1)];
        r2 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][3][(threadIdx.x + 2)];
        r3 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][3][(threadIdx.x + 1)];
        r4 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 1)];
        r5 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][3][(threadIdx.x + 1)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 5), 3) + 1), 2)][3][(threadIdx.x + 1)] = r0;
        g2[pmod((floord((v1 + 5), 3) + 1), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -5)] = r0;
      }
      if ((((0 <= (v1 + 5) && (v1 + 5) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -5) && (((v3 * 8) + threadIdx.x) + -5) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 5), 3), 2)][4][(threadIdx.x + 1)];
        r2 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 2)];
        r3 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 1)];
        r4 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][5][(threadIdx.x + 1)];
        r5 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 1)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 5), 3) + 1), 2)][4][(threadIdx.x + 1)] = r0;
        g2[pmod((floord((v1 + 5), 3) + 1), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -5)] = r0;
      }
      __syncthreads();
    }
  }
}

