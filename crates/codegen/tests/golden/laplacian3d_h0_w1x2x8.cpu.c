// Vectorized whole-block CPU lowering: one function per kernel, one
// `lane` loop iteration per GPU thread. Statement-level lockstep makes
// every former __syncthreads() barrier-synchronous by construction.
#include <math.h>

static inline int floord(int a, int b) {
  int q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}
static inline int pmod(int a, int b) { int r = a % b; return r < 0 ? r + b : r; }
static inline int min(int a, int b) { return a < b ? a : b; }
static inline int max(int a, int b) { return a > b ? a : b; }

// block 8x2x1 = 16 lanes, 1760 bytes block-local
static void hybrid_laplacian3d_phase0(float *g0, long plane_stride, long stride0, long stride1, int p0, int p1, int blockIdx) {
  float s_A[2][4][5][11];
  int v0 = 0;
  int v1 = 0;
  int v2 = 0;
  int v3 = 0;
  int v4 = 0;
  int v5 = 0;
  int v6 = 0;
  int v7[16];
  float r0[16];
  float r1[16];
  float r2[16];
  float r3[16];
  float r4[16];
  float r5[16];
  float r6[16];
  float r7[16];
  int m0[16];
  v0 = (blockIdx + p1);
  v1 = ((p0 * 2) + -1);
  v2 = ((v0 * 4) + -2);
  for (v3 = 0; v3 < 5; v3 += 1) {
    for (v4 = 0; v4 < 2; v4 += 1) {
      if (v4 == 0) {
        for (v6 = 0; v6 < 14; v6 += 1) {
          for (int lane = 0; lane < 16; ++lane) {
            v7[lane] = ((v6 * 16) + ((lane % 8) + (((lane / 8) % 2) * 8)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            m0[lane] = ((((v7[lane] < 220 && (0 <= ((v2 + -1) + pmod(floord(v7[lane], 55), 4)) && ((v2 + -1) + pmod(floord(v7[lane], 55), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7[lane], 11), 5)) && (((v3 * 2) + -2) + pmod(floord(v7[lane], 11), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + pmod(v7[lane], 11)) && (((v4 * 8) + -2) + pmod(v7[lane], 11)) <= 11)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            r0[lane] = g0[0 * plane_stride + ((v2 + -1) + pmod(floord(v7[lane], 55), 4)) * stride0 + (((v3 * 2) + -2) + pmod(floord(v7[lane], 11), 5)) * stride1 + (((v4 * 8) + -2) + pmod(v7[lane], 11))];
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            s_A[0][pmod(floord(v7[lane], 55), 4)][pmod(floord(v7[lane], 11), 5)][pmod(v7[lane], 11)] = r0[lane];
          }
        }
        for (v6 = 0; v6 < 14; v6 += 1) {
          for (int lane = 0; lane < 16; ++lane) {
            v7[lane] = ((v6 * 16) + ((lane % 8) + (((lane / 8) % 2) * 8)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            m0[lane] = ((((v7[lane] < 220 && (0 <= ((v2 + -1) + pmod(floord(v7[lane], 55), 4)) && ((v2 + -1) + pmod(floord(v7[lane], 55), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7[lane], 11), 5)) && (((v3 * 2) + -2) + pmod(floord(v7[lane], 11), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + pmod(v7[lane], 11)) && (((v4 * 8) + -2) + pmod(v7[lane], 11)) <= 11)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            r0[lane] = g0[1 * plane_stride + ((v2 + -1) + pmod(floord(v7[lane], 55), 4)) * stride0 + (((v3 * 2) + -2) + pmod(floord(v7[lane], 11), 5)) * stride1 + (((v4 * 8) + -2) + pmod(v7[lane], 11))];
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            s_A[1][pmod(floord(v7[lane], 55), 4)][pmod(floord(v7[lane], 11), 5)][pmod(v7[lane], 11)] = r0[lane];
          }
        }
        /* __syncthreads(): lane loops run in statement lockstep */
      } else {
        for (v6 = 0; v6 < 4; v6 += 1) {
          for (int lane = 0; lane < 16; ++lane) {
            v7[lane] = ((v6 * 16) + ((lane % 8) + (((lane / 8) % 2) * 8)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            m0[lane] = (v7[lane] < 60);
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            r0[lane] = s_A[0][pmod(floord(v7[lane], 15), 4)][pmod(floord(v7[lane], 3), 5)][(pmod(v7[lane], 3) + 8)];
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            s_A[0][pmod(floord(v7[lane], 15), 4)][pmod(floord(v7[lane], 3), 5)][pmod(v7[lane], 3)] = r0[lane];
          }
        }
        for (v6 = 0; v6 < 4; v6 += 1) {
          for (int lane = 0; lane < 16; ++lane) {
            v7[lane] = ((v6 * 16) + ((lane % 8) + (((lane / 8) % 2) * 8)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            m0[lane] = (v7[lane] < 60);
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            r0[lane] = s_A[1][pmod(floord(v7[lane], 15), 4)][pmod(floord(v7[lane], 3), 5)][(pmod(v7[lane], 3) + 8)];
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            s_A[1][pmod(floord(v7[lane], 15), 4)][pmod(floord(v7[lane], 3), 5)][pmod(v7[lane], 3)] = r0[lane];
          }
        }
        /* __syncthreads(): lane loops run in statement lockstep */
        for (v6 = 0; v6 < 10; v6 += 1) {
          for (int lane = 0; lane < 16; ++lane) {
            v7[lane] = ((v6 * 16) + ((lane % 8) + (((lane / 8) % 2) * 8)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            m0[lane] = ((((v7[lane] < 160 && (0 <= ((v2 + -1) + pmod(floord(v7[lane], 40), 4)) && ((v2 + -1) + pmod(floord(v7[lane], 40), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7[lane], 8), 5)) && (((v3 * 2) + -2) + pmod(floord(v7[lane], 8), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + (pmod(v7[lane], 8) + 3)) && (((v4 * 8) + -2) + (pmod(v7[lane], 8) + 3)) <= 11)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            r0[lane] = g0[0 * plane_stride + ((v2 + -1) + pmod(floord(v7[lane], 40), 4)) * stride0 + (((v3 * 2) + -2) + pmod(floord(v7[lane], 8), 5)) * stride1 + (((v4 * 8) + -2) + (pmod(v7[lane], 8) + 3))];
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            s_A[0][pmod(floord(v7[lane], 40), 4)][pmod(floord(v7[lane], 8), 5)][(pmod(v7[lane], 8) + 3)] = r0[lane];
          }
        }
        for (v6 = 0; v6 < 10; v6 += 1) {
          for (int lane = 0; lane < 16; ++lane) {
            v7[lane] = ((v6 * 16) + ((lane % 8) + (((lane / 8) % 2) * 8)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            m0[lane] = ((((v7[lane] < 160 && (0 <= ((v2 + -1) + pmod(floord(v7[lane], 40), 4)) && ((v2 + -1) + pmod(floord(v7[lane], 40), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7[lane], 8), 5)) && (((v3 * 2) + -2) + pmod(floord(v7[lane], 8), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + (pmod(v7[lane], 8) + 3)) && (((v4 * 8) + -2) + (pmod(v7[lane], 8) + 3)) <= 11)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            r0[lane] = g0[1 * plane_stride + ((v2 + -1) + pmod(floord(v7[lane], 40), 4)) * stride0 + (((v3 * 2) + -2) + pmod(floord(v7[lane], 8), 5)) * stride1 + (((v4 * 8) + -2) + (pmod(v7[lane], 8) + 3))];
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            s_A[1][pmod(floord(v7[lane], 40), 4)][pmod(floord(v7[lane], 8), 5)][(pmod(v7[lane], 8) + 3)] = r0[lane];
          }
        }
        /* __syncthreads(): lane loops run in statement lockstep */
      }
      if ((((((((0 <= v1 && (v1 + 1) <= 3) && 1 <= v2) && (v2 + 1) <= 8) && 2 <= (v3 * 2)) && ((v3 * 2) + 1) <= 8) && 2 <= (v4 * 8)) && ((v4 * 8) + 7) <= 10)) {
        for (int lane = 0; lane < 16; ++lane) {
          r1[lane] = s_A[pmod(v1, 2)][0][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r2[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r3[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r4[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 3)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r5[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r6[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 3)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r7[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r0[lane] = (0.125f * ((((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]) + r6[lane]) + (-6.0f * r7[lane])));
        }
        for (int lane = 0; lane < 16; ++lane) {
          s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 2)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          g0[pmod((v1 + 1), 2) * plane_stride + v2 * stride0 + ((v3 * 2) + ((lane / 8) % 2)) * stride1 + ((v4 * 8) + (lane % 8))] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r1[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r2[lane] = s_A[pmod(v1, 2)][3][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r3[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r4[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 3)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r5[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r6[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 3)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r7[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r0[lane] = (0.125f * ((((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]) + r6[lane]) + (-6.0f * r7[lane])));
        }
        for (int lane = 0; lane < 16; ++lane) {
          s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 2)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          g0[pmod((v1 + 1), 2) * plane_stride + (v2 + 1) * stride0 + ((v3 * 2) + ((lane / 8) % 2)) * stride1 + ((v4 * 8) + (lane % 8))] = r0[lane];
        }
        /* __syncthreads(): lane loops run in statement lockstep */
        for (int lane = 0; lane < 16; ++lane) {
          r1[lane] = s_A[pmod((v1 + 1), 2)][0][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r2[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r3[lane] = s_A[pmod((v1 + 1), 2)][1][((lane / 8) % 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r4[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r5[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 1)][(lane % 8)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r6[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r7[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r0[lane] = (0.125f * ((((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]) + r6[lane]) + (-6.0f * r7[lane])));
        }
        for (int lane = 0; lane < 16; ++lane) {
          s_A[pmod((v1 + 2), 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 1)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          g0[pmod((v1 + 2), 2) * plane_stride + v2 * stride0 + (((v3 * 2) + ((lane / 8) % 2)) + -1) * stride1 + (((v4 * 8) + (lane % 8)) + -1)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r1[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r2[lane] = s_A[pmod((v1 + 1), 2)][3][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r3[lane] = s_A[pmod((v1 + 1), 2)][2][((lane / 8) % 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r4[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r5[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 1)][(lane % 8)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r6[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r7[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r0[lane] = (0.125f * ((((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]) + r6[lane]) + (-6.0f * r7[lane])));
        }
        for (int lane = 0; lane < 16; ++lane) {
          s_A[pmod((v1 + 2), 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 1)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          g0[pmod((v1 + 2), 2) * plane_stride + (v2 + 1) * stride0 + (((v3 * 2) + ((lane / 8) % 2)) + -1) * stride1 + (((v4 * 8) + (lane % 8)) + -1)] = r0[lane];
        }
        /* __syncthreads(): lane loops run in statement lockstep */
      } else {
        for (int lane = 0; lane < 16; ++lane) {
          m0[lane] = (((((0 <= v1 && v1 <= 3) && (1 <= v2 && v2 <= 8)) && (1 <= ((v3 * 2) + ((lane / 8) % 2)) && ((v3 * 2) + ((lane / 8) % 2)) <= 8)) && (1 <= ((v4 * 8) + (lane % 8)) && ((v4 * 8) + (lane % 8)) <= 10)));
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r1[lane] = s_A[pmod(v1, 2)][0][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r2[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r3[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r4[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 3)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r5[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r6[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 3)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r7[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = (0.125f * ((((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]) + r6[lane]) + (-6.0f * r7[lane])));
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 2)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          g0[pmod((v1 + 1), 2) * plane_stride + v2 * stride0 + ((v3 * 2) + ((lane / 8) % 2)) * stride1 + ((v4 * 8) + (lane % 8))] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          m0[lane] = (((((0 <= v1 && v1 <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 8)) && (1 <= ((v3 * 2) + ((lane / 8) % 2)) && ((v3 * 2) + ((lane / 8) % 2)) <= 8)) && (1 <= ((v4 * 8) + (lane % 8)) && ((v4 * 8) + (lane % 8)) <= 10)));
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r1[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r2[lane] = s_A[pmod(v1, 2)][3][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r3[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r4[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 3)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r5[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r6[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 3)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r7[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = (0.125f * ((((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]) + r6[lane]) + (-6.0f * r7[lane])));
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 2)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          g0[pmod((v1 + 1), 2) * plane_stride + (v2 + 1) * stride0 + ((v3 * 2) + ((lane / 8) % 2)) * stride1 + ((v4 * 8) + (lane % 8))] = r0[lane];
        }
        /* __syncthreads(): lane loops run in statement lockstep */
        for (int lane = 0; lane < 16; ++lane) {
          m0[lane] = (((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= v2 && v2 <= 8)) && (1 <= (((v3 * 2) + ((lane / 8) % 2)) + -1) && (((v3 * 2) + ((lane / 8) % 2)) + -1) <= 8)) && (1 <= (((v4 * 8) + (lane % 8)) + -1) && (((v4 * 8) + (lane % 8)) + -1) <= 10)));
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r1[lane] = s_A[pmod((v1 + 1), 2)][0][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r2[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r3[lane] = s_A[pmod((v1 + 1), 2)][1][((lane / 8) % 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r4[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r5[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 1)][(lane % 8)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r6[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r7[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = (0.125f * ((((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]) + r6[lane]) + (-6.0f * r7[lane])));
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          s_A[pmod((v1 + 2), 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 1)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          g0[pmod((v1 + 2), 2) * plane_stride + v2 * stride0 + (((v3 * 2) + ((lane / 8) % 2)) + -1) * stride1 + (((v4 * 8) + (lane % 8)) + -1)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          m0[lane] = (((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 8)) && (1 <= (((v3 * 2) + ((lane / 8) % 2)) + -1) && (((v3 * 2) + ((lane / 8) % 2)) + -1) <= 8)) && (1 <= (((v4 * 8) + (lane % 8)) + -1) && (((v4 * 8) + (lane % 8)) + -1) <= 10)));
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r1[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r2[lane] = s_A[pmod((v1 + 1), 2)][3][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r3[lane] = s_A[pmod((v1 + 1), 2)][2][((lane / 8) % 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r4[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r5[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 1)][(lane % 8)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r6[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r7[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = (0.125f * ((((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]) + r6[lane]) + (-6.0f * r7[lane])));
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          s_A[pmod((v1 + 2), 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 1)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          g0[pmod((v1 + 2), 2) * plane_stride + (v2 + 1) * stride0 + (((v3 * 2) + ((lane / 8) % 2)) + -1) * stride1 + (((v4 * 8) + (lane % 8)) + -1)] = r0[lane];
        }
        /* __syncthreads(): lane loops run in statement lockstep */
      }
    }
  }
}

// block 8x2x1 = 16 lanes, 1760 bytes block-local
static void hybrid_laplacian3d_phase1(float *g0, long plane_stride, long stride0, long stride1, int p0, int p1, int blockIdx) {
  float s_A[2][4][5][11];
  int v0 = 0;
  int v1 = 0;
  int v2 = 0;
  int v3 = 0;
  int v4 = 0;
  int v5 = 0;
  int v6 = 0;
  int v7[16];
  float r0[16];
  float r1[16];
  float r2[16];
  float r3[16];
  float r4[16];
  float r5[16];
  float r6[16];
  float r7[16];
  int m0[16];
  v0 = (blockIdx + p1);
  v1 = (p0 * 2);
  v2 = (v0 * 4);
  for (v3 = 0; v3 < 5; v3 += 1) {
    for (v4 = 0; v4 < 2; v4 += 1) {
      if (v4 == 0) {
        for (v6 = 0; v6 < 14; v6 += 1) {
          for (int lane = 0; lane < 16; ++lane) {
            v7[lane] = ((v6 * 16) + ((lane % 8) + (((lane / 8) % 2) * 8)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            m0[lane] = ((((v7[lane] < 220 && (0 <= ((v2 + -1) + pmod(floord(v7[lane], 55), 4)) && ((v2 + -1) + pmod(floord(v7[lane], 55), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7[lane], 11), 5)) && (((v3 * 2) + -2) + pmod(floord(v7[lane], 11), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + pmod(v7[lane], 11)) && (((v4 * 8) + -2) + pmod(v7[lane], 11)) <= 11)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            r0[lane] = g0[0 * plane_stride + ((v2 + -1) + pmod(floord(v7[lane], 55), 4)) * stride0 + (((v3 * 2) + -2) + pmod(floord(v7[lane], 11), 5)) * stride1 + (((v4 * 8) + -2) + pmod(v7[lane], 11))];
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            s_A[0][pmod(floord(v7[lane], 55), 4)][pmod(floord(v7[lane], 11), 5)][pmod(v7[lane], 11)] = r0[lane];
          }
        }
        for (v6 = 0; v6 < 14; v6 += 1) {
          for (int lane = 0; lane < 16; ++lane) {
            v7[lane] = ((v6 * 16) + ((lane % 8) + (((lane / 8) % 2) * 8)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            m0[lane] = ((((v7[lane] < 220 && (0 <= ((v2 + -1) + pmod(floord(v7[lane], 55), 4)) && ((v2 + -1) + pmod(floord(v7[lane], 55), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7[lane], 11), 5)) && (((v3 * 2) + -2) + pmod(floord(v7[lane], 11), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + pmod(v7[lane], 11)) && (((v4 * 8) + -2) + pmod(v7[lane], 11)) <= 11)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            r0[lane] = g0[1 * plane_stride + ((v2 + -1) + pmod(floord(v7[lane], 55), 4)) * stride0 + (((v3 * 2) + -2) + pmod(floord(v7[lane], 11), 5)) * stride1 + (((v4 * 8) + -2) + pmod(v7[lane], 11))];
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            s_A[1][pmod(floord(v7[lane], 55), 4)][pmod(floord(v7[lane], 11), 5)][pmod(v7[lane], 11)] = r0[lane];
          }
        }
        /* __syncthreads(): lane loops run in statement lockstep */
      } else {
        for (v6 = 0; v6 < 4; v6 += 1) {
          for (int lane = 0; lane < 16; ++lane) {
            v7[lane] = ((v6 * 16) + ((lane % 8) + (((lane / 8) % 2) * 8)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            m0[lane] = (v7[lane] < 60);
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            r0[lane] = s_A[0][pmod(floord(v7[lane], 15), 4)][pmod(floord(v7[lane], 3), 5)][(pmod(v7[lane], 3) + 8)];
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            s_A[0][pmod(floord(v7[lane], 15), 4)][pmod(floord(v7[lane], 3), 5)][pmod(v7[lane], 3)] = r0[lane];
          }
        }
        for (v6 = 0; v6 < 4; v6 += 1) {
          for (int lane = 0; lane < 16; ++lane) {
            v7[lane] = ((v6 * 16) + ((lane % 8) + (((lane / 8) % 2) * 8)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            m0[lane] = (v7[lane] < 60);
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            r0[lane] = s_A[1][pmod(floord(v7[lane], 15), 4)][pmod(floord(v7[lane], 3), 5)][(pmod(v7[lane], 3) + 8)];
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            s_A[1][pmod(floord(v7[lane], 15), 4)][pmod(floord(v7[lane], 3), 5)][pmod(v7[lane], 3)] = r0[lane];
          }
        }
        /* __syncthreads(): lane loops run in statement lockstep */
        for (v6 = 0; v6 < 10; v6 += 1) {
          for (int lane = 0; lane < 16; ++lane) {
            v7[lane] = ((v6 * 16) + ((lane % 8) + (((lane / 8) % 2) * 8)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            m0[lane] = ((((v7[lane] < 160 && (0 <= ((v2 + -1) + pmod(floord(v7[lane], 40), 4)) && ((v2 + -1) + pmod(floord(v7[lane], 40), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7[lane], 8), 5)) && (((v3 * 2) + -2) + pmod(floord(v7[lane], 8), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + (pmod(v7[lane], 8) + 3)) && (((v4 * 8) + -2) + (pmod(v7[lane], 8) + 3)) <= 11)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            r0[lane] = g0[0 * plane_stride + ((v2 + -1) + pmod(floord(v7[lane], 40), 4)) * stride0 + (((v3 * 2) + -2) + pmod(floord(v7[lane], 8), 5)) * stride1 + (((v4 * 8) + -2) + (pmod(v7[lane], 8) + 3))];
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            s_A[0][pmod(floord(v7[lane], 40), 4)][pmod(floord(v7[lane], 8), 5)][(pmod(v7[lane], 8) + 3)] = r0[lane];
          }
        }
        for (v6 = 0; v6 < 10; v6 += 1) {
          for (int lane = 0; lane < 16; ++lane) {
            v7[lane] = ((v6 * 16) + ((lane % 8) + (((lane / 8) % 2) * 8)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            m0[lane] = ((((v7[lane] < 160 && (0 <= ((v2 + -1) + pmod(floord(v7[lane], 40), 4)) && ((v2 + -1) + pmod(floord(v7[lane], 40), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7[lane], 8), 5)) && (((v3 * 2) + -2) + pmod(floord(v7[lane], 8), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + (pmod(v7[lane], 8) + 3)) && (((v4 * 8) + -2) + (pmod(v7[lane], 8) + 3)) <= 11)));
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            r0[lane] = g0[1 * plane_stride + ((v2 + -1) + pmod(floord(v7[lane], 40), 4)) * stride0 + (((v3 * 2) + -2) + pmod(floord(v7[lane], 8), 5)) * stride1 + (((v4 * 8) + -2) + (pmod(v7[lane], 8) + 3))];
          }
          for (int lane = 0; lane < 16; ++lane) {
            if (!m0[lane]) continue;
            s_A[1][pmod(floord(v7[lane], 40), 4)][pmod(floord(v7[lane], 8), 5)][(pmod(v7[lane], 8) + 3)] = r0[lane];
          }
        }
        /* __syncthreads(): lane loops run in statement lockstep */
      }
      if ((((((((0 <= v1 && (v1 + 1) <= 3) && 1 <= v2) && (v2 + 1) <= 8) && 2 <= (v3 * 2)) && ((v3 * 2) + 1) <= 8) && 2 <= (v4 * 8)) && ((v4 * 8) + 7) <= 10)) {
        for (int lane = 0; lane < 16; ++lane) {
          r1[lane] = s_A[pmod(v1, 2)][0][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r2[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r3[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r4[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 3)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r5[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r6[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 3)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r7[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r0[lane] = (0.125f * ((((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]) + r6[lane]) + (-6.0f * r7[lane])));
        }
        for (int lane = 0; lane < 16; ++lane) {
          s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 2)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          g0[pmod((v1 + 1), 2) * plane_stride + v2 * stride0 + ((v3 * 2) + ((lane / 8) % 2)) * stride1 + ((v4 * 8) + (lane % 8))] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r1[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r2[lane] = s_A[pmod(v1, 2)][3][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r3[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r4[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 3)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r5[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r6[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 3)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r7[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r0[lane] = (0.125f * ((((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]) + r6[lane]) + (-6.0f * r7[lane])));
        }
        for (int lane = 0; lane < 16; ++lane) {
          s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 2)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          g0[pmod((v1 + 1), 2) * plane_stride + (v2 + 1) * stride0 + ((v3 * 2) + ((lane / 8) % 2)) * stride1 + ((v4 * 8) + (lane % 8))] = r0[lane];
        }
        /* __syncthreads(): lane loops run in statement lockstep */
        for (int lane = 0; lane < 16; ++lane) {
          r1[lane] = s_A[pmod((v1 + 1), 2)][0][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r2[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r3[lane] = s_A[pmod((v1 + 1), 2)][1][((lane / 8) % 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r4[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r5[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 1)][(lane % 8)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r6[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r7[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r0[lane] = (0.125f * ((((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]) + r6[lane]) + (-6.0f * r7[lane])));
        }
        for (int lane = 0; lane < 16; ++lane) {
          s_A[pmod((v1 + 2), 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 1)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          g0[pmod((v1 + 2), 2) * plane_stride + v2 * stride0 + (((v3 * 2) + ((lane / 8) % 2)) + -1) * stride1 + (((v4 * 8) + (lane % 8)) + -1)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r1[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r2[lane] = s_A[pmod((v1 + 1), 2)][3][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r3[lane] = s_A[pmod((v1 + 1), 2)][2][((lane / 8) % 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r4[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r5[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 1)][(lane % 8)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r6[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r7[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          r0[lane] = (0.125f * ((((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]) + r6[lane]) + (-6.0f * r7[lane])));
        }
        for (int lane = 0; lane < 16; ++lane) {
          s_A[pmod((v1 + 2), 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 1)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          g0[pmod((v1 + 2), 2) * plane_stride + (v2 + 1) * stride0 + (((v3 * 2) + ((lane / 8) % 2)) + -1) * stride1 + (((v4 * 8) + (lane % 8)) + -1)] = r0[lane];
        }
        /* __syncthreads(): lane loops run in statement lockstep */
      } else {
        for (int lane = 0; lane < 16; ++lane) {
          m0[lane] = (((((0 <= v1 && v1 <= 3) && (1 <= v2 && v2 <= 8)) && (1 <= ((v3 * 2) + ((lane / 8) % 2)) && ((v3 * 2) + ((lane / 8) % 2)) <= 8)) && (1 <= ((v4 * 8) + (lane % 8)) && ((v4 * 8) + (lane % 8)) <= 10)));
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r1[lane] = s_A[pmod(v1, 2)][0][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r2[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r3[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r4[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 3)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r5[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r6[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 3)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r7[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = (0.125f * ((((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]) + r6[lane]) + (-6.0f * r7[lane])));
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 2)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          g0[pmod((v1 + 1), 2) * plane_stride + v2 * stride0 + ((v3 * 2) + ((lane / 8) % 2)) * stride1 + ((v4 * 8) + (lane % 8))] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          m0[lane] = (((((0 <= v1 && v1 <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 8)) && (1 <= ((v3 * 2) + ((lane / 8) % 2)) && ((v3 * 2) + ((lane / 8) % 2)) <= 8)) && (1 <= ((v4 * 8) + (lane % 8)) && ((v4 * 8) + (lane % 8)) <= 10)));
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r1[lane] = s_A[pmod(v1, 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r2[lane] = s_A[pmod(v1, 2)][3][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r3[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r4[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 3)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r5[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r6[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 3)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r7[lane] = s_A[pmod(v1, 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = (0.125f * ((((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]) + r6[lane]) + (-6.0f * r7[lane])));
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 2)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          g0[pmod((v1 + 1), 2) * plane_stride + (v2 + 1) * stride0 + ((v3 * 2) + ((lane / 8) % 2)) * stride1 + ((v4 * 8) + (lane % 8))] = r0[lane];
        }
        /* __syncthreads(): lane loops run in statement lockstep */
        for (int lane = 0; lane < 16; ++lane) {
          m0[lane] = (((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= v2 && v2 <= 8)) && (1 <= (((v3 * 2) + ((lane / 8) % 2)) + -1) && (((v3 * 2) + ((lane / 8) % 2)) + -1) <= 8)) && (1 <= (((v4 * 8) + (lane % 8)) + -1) && (((v4 * 8) + (lane % 8)) + -1) <= 10)));
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r1[lane] = s_A[pmod((v1 + 1), 2)][0][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r2[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r3[lane] = s_A[pmod((v1 + 1), 2)][1][((lane / 8) % 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r4[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r5[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 1)][(lane % 8)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r6[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r7[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = (0.125f * ((((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]) + r6[lane]) + (-6.0f * r7[lane])));
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          s_A[pmod((v1 + 2), 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 1)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          g0[pmod((v1 + 2), 2) * plane_stride + v2 * stride0 + (((v3 * 2) + ((lane / 8) % 2)) + -1) * stride1 + (((v4 * 8) + (lane % 8)) + -1)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          m0[lane] = (((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 8)) && (1 <= (((v3 * 2) + ((lane / 8) % 2)) + -1) && (((v3 * 2) + ((lane / 8) % 2)) + -1) <= 8)) && (1 <= (((v4 * 8) + (lane % 8)) + -1) && (((v4 * 8) + (lane % 8)) + -1) <= 10)));
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r1[lane] = s_A[pmod((v1 + 1), 2)][1][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r2[lane] = s_A[pmod((v1 + 1), 2)][3][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r3[lane] = s_A[pmod((v1 + 1), 2)][2][((lane / 8) % 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r4[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 2)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r5[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 1)][(lane % 8)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r6[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 2)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r7[lane] = s_A[pmod((v1 + 1), 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 1)];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = (0.125f * ((((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]) + r6[lane]) + (-6.0f * r7[lane])));
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          s_A[pmod((v1 + 2), 2)][2][(((lane / 8) % 2) + 1)][((lane % 8) + 1)] = r0[lane];
        }
        for (int lane = 0; lane < 16; ++lane) {
          if (!m0[lane]) continue;
          g0[pmod((v1 + 2), 2) * plane_stride + (v2 + 1) * stride0 + (((v3 * 2) + ((lane / 8) % 2)) + -1) * stride1 + (((v4 * 8) + (lane % 8)) + -1)] = r0[lane];
        }
        /* __syncthreads(): lane loops run in statement lockstep */
      }
    }
  }
}

