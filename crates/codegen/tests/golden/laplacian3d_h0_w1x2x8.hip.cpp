#include <hip/hip_runtime.h>

// block 8x2x1, 1760 bytes shared
__global__ __launch_bounds__(16) void hybrid_laplacian3d_phase0(float *g0 /* .. per field */, int p0, int p1) {
  __shared__ float s_A[2][4][5][11];
  float r0 /* .. r7 */;
  int v0 = (blockIdx.x + p1);
  int v1 = ((p0 * 2) + -1);
  int v2 = ((v0 * 4) + -2);
  for (int v3 = 0; v3 < 5; v3 += 1) {
    for (int v4 = 0; v4 < 2; v4 += 1) {
      if (v4 == 0) {
        for (int v6 = 0; v6 < 14; v6 += 1) {
          int v7 = ((v6 * 16) + (threadIdx.x + (threadIdx.y * 8)));
          if ((((v7 < 220 && (0 <= ((v2 + -1) + pmod(floord(v7, 55), 4)) && ((v2 + -1) + pmod(floord(v7, 55), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)) && (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + pmod(v7, 11)) && (((v4 * 8) + -2) + pmod(v7, 11)) <= 11))) {
            r0 = g0[0][((v2 + -1) + pmod(floord(v7, 55), 4))][(((v3 * 2) + -2) + pmod(floord(v7, 11), 5))][(((v4 * 8) + -2) + pmod(v7, 11))];
            s_A[0][pmod(floord(v7, 55), 4)][pmod(floord(v7, 11), 5)][pmod(v7, 11)] = r0;
          }
        }
        for (int v6 = 0; v6 < 14; v6 += 1) {
          int v7 = ((v6 * 16) + (threadIdx.x + (threadIdx.y * 8)));
          if ((((v7 < 220 && (0 <= ((v2 + -1) + pmod(floord(v7, 55), 4)) && ((v2 + -1) + pmod(floord(v7, 55), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)) && (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + pmod(v7, 11)) && (((v4 * 8) + -2) + pmod(v7, 11)) <= 11))) {
            r0 = g0[1][((v2 + -1) + pmod(floord(v7, 55), 4))][(((v3 * 2) + -2) + pmod(floord(v7, 11), 5))][(((v4 * 8) + -2) + pmod(v7, 11))];
            s_A[1][pmod(floord(v7, 55), 4)][pmod(floord(v7, 11), 5)][pmod(v7, 11)] = r0;
          }
        }
        __syncthreads();
      } else {
        for (int v6 = 0; v6 < 4; v6 += 1) {
          int v7 = ((v6 * 16) + (threadIdx.x + (threadIdx.y * 8)));
          if (v7 < 60) {
            r0 = s_A[0][pmod(floord(v7, 15), 4)][pmod(floord(v7, 3), 5)][(pmod(v7, 3) + 8)];
            s_A[0][pmod(floord(v7, 15), 4)][pmod(floord(v7, 3), 5)][pmod(v7, 3)] = r0;
          }
        }
        for (int v6 = 0; v6 < 4; v6 += 1) {
          int v7 = ((v6 * 16) + (threadIdx.x + (threadIdx.y * 8)));
          if (v7 < 60) {
            r0 = s_A[1][pmod(floord(v7, 15), 4)][pmod(floord(v7, 3), 5)][(pmod(v7, 3) + 8)];
            s_A[1][pmod(floord(v7, 15), 4)][pmod(floord(v7, 3), 5)][pmod(v7, 3)] = r0;
          }
        }
        __syncthreads();
        for (int v6 = 0; v6 < 10; v6 += 1) {
          int v7 = ((v6 * 16) + (threadIdx.x + (threadIdx.y * 8)));
          if ((((v7 < 160 && (0 <= ((v2 + -1) + pmod(floord(v7, 40), 4)) && ((v2 + -1) + pmod(floord(v7, 40), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)) && (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + (pmod(v7, 8) + 3)) && (((v4 * 8) + -2) + (pmod(v7, 8) + 3)) <= 11))) {
            r0 = g0[0][((v2 + -1) + pmod(floord(v7, 40), 4))][(((v3 * 2) + -2) + pmod(floord(v7, 8), 5))][(((v4 * 8) + -2) + (pmod(v7, 8) + 3))];
            s_A[0][pmod(floord(v7, 40), 4)][pmod(floord(v7, 8), 5)][(pmod(v7, 8) + 3)] = r0;
          }
        }
        for (int v6 = 0; v6 < 10; v6 += 1) {
          int v7 = ((v6 * 16) + (threadIdx.x + (threadIdx.y * 8)));
          if ((((v7 < 160 && (0 <= ((v2 + -1) + pmod(floord(v7, 40), 4)) && ((v2 + -1) + pmod(floord(v7, 40), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)) && (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + (pmod(v7, 8) + 3)) && (((v4 * 8) + -2) + (pmod(v7, 8) + 3)) <= 11))) {
            r0 = g0[1][((v2 + -1) + pmod(floord(v7, 40), 4))][(((v3 * 2) + -2) + pmod(floord(v7, 8), 5))][(((v4 * 8) + -2) + (pmod(v7, 8) + 3))];
            s_A[1][pmod(floord(v7, 40), 4)][pmod(floord(v7, 8), 5)][(pmod(v7, 8) + 3)] = r0;
          }
        }
        __syncthreads();
      }
      if ((((((((0 <= v1 && (v1 + 1) <= 3) && 1 <= v2) && (v2 + 1) <= 8) && 2 <= (v3 * 2)) && ((v3 * 2) + 1) <= 8) && 2 <= (v4 * 8)) && ((v4 * 8) + 7) <= 10)) {
        r1 = s_A[pmod(v1, 2)][0][(threadIdx.y + 2)][(threadIdx.x + 2)];
        r2 = s_A[pmod(v1, 2)][2][(threadIdx.y + 2)][(threadIdx.x + 2)];
        r3 = s_A[pmod(v1, 2)][1][(threadIdx.y + 1)][(threadIdx.x + 2)];
        r4 = s_A[pmod(v1, 2)][1][(threadIdx.y + 3)][(threadIdx.x + 2)];
        r5 = s_A[pmod(v1, 2)][1][(threadIdx.y + 2)][(threadIdx.x + 1)];
        r6 = s_A[pmod(v1, 2)][1][(threadIdx.y + 2)][(threadIdx.x + 3)];
        r7 = s_A[pmod(v1, 2)][1][(threadIdx.y + 2)][(threadIdx.x + 2)];
        r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
        s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 2)][(threadIdx.x + 2)] = r0;
        g0[pmod((v1 + 1), 2)][v2][((v3 * 2) + threadIdx.y)][((v4 * 8) + threadIdx.x)] = r0;
        r1 = s_A[pmod(v1, 2)][1][(threadIdx.y + 2)][(threadIdx.x + 2)];
        r2 = s_A[pmod(v1, 2)][3][(threadIdx.y + 2)][(threadIdx.x + 2)];
        r3 = s_A[pmod(v1, 2)][2][(threadIdx.y + 1)][(threadIdx.x + 2)];
        r4 = s_A[pmod(v1, 2)][2][(threadIdx.y + 3)][(threadIdx.x + 2)];
        r5 = s_A[pmod(v1, 2)][2][(threadIdx.y + 2)][(threadIdx.x + 1)];
        r6 = s_A[pmod(v1, 2)][2][(threadIdx.y + 2)][(threadIdx.x + 3)];
        r7 = s_A[pmod(v1, 2)][2][(threadIdx.y + 2)][(threadIdx.x + 2)];
        r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
        s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 2)][(threadIdx.x + 2)] = r0;
        g0[pmod((v1 + 1), 2)][(v2 + 1)][((v3 * 2) + threadIdx.y)][((v4 * 8) + threadIdx.x)] = r0;
        __syncthreads();
        r1 = s_A[pmod((v1 + 1), 2)][0][(threadIdx.y + 1)][(threadIdx.x + 1)];
        r2 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 1)][(threadIdx.x + 1)];
        r3 = s_A[pmod((v1 + 1), 2)][1][threadIdx.y][(threadIdx.x + 1)];
        r4 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 2)][(threadIdx.x + 1)];
        r5 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 1)][threadIdx.x];
        r6 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 1)][(threadIdx.x + 2)];
        r7 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 1)][(threadIdx.x + 1)];
        r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
        s_A[pmod((v1 + 2), 2)][1][(threadIdx.y + 1)][(threadIdx.x + 1)] = r0;
        g0[pmod((v1 + 2), 2)][v2][(((v3 * 2) + threadIdx.y) + -1)][(((v4 * 8) + threadIdx.x) + -1)] = r0;
        r1 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 1)][(threadIdx.x + 1)];
        r2 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.y + 1)][(threadIdx.x + 1)];
        r3 = s_A[pmod((v1 + 1), 2)][2][threadIdx.y][(threadIdx.x + 1)];
        r4 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 2)][(threadIdx.x + 1)];
        r5 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 1)][threadIdx.x];
        r6 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 1)][(threadIdx.x + 2)];
        r7 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 1)][(threadIdx.x + 1)];
        r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
        s_A[pmod((v1 + 2), 2)][2][(threadIdx.y + 1)][(threadIdx.x + 1)] = r0;
        g0[pmod((v1 + 2), 2)][(v2 + 1)][(((v3 * 2) + threadIdx.y) + -1)][(((v4 * 8) + threadIdx.x) + -1)] = r0;
        __syncthreads();
      } else {
        if (((((0 <= v1 && v1 <= 3) && (1 <= v2 && v2 <= 8)) && (1 <= ((v3 * 2) + threadIdx.y) && ((v3 * 2) + threadIdx.y) <= 8)) && (1 <= ((v4 * 8) + threadIdx.x) && ((v4 * 8) + threadIdx.x) <= 10))) {
          r1 = s_A[pmod(v1, 2)][0][(threadIdx.y + 2)][(threadIdx.x + 2)];
          r2 = s_A[pmod(v1, 2)][2][(threadIdx.y + 2)][(threadIdx.x + 2)];
          r3 = s_A[pmod(v1, 2)][1][(threadIdx.y + 1)][(threadIdx.x + 2)];
          r4 = s_A[pmod(v1, 2)][1][(threadIdx.y + 3)][(threadIdx.x + 2)];
          r5 = s_A[pmod(v1, 2)][1][(threadIdx.y + 2)][(threadIdx.x + 1)];
          r6 = s_A[pmod(v1, 2)][1][(threadIdx.y + 2)][(threadIdx.x + 3)];
          r7 = s_A[pmod(v1, 2)][1][(threadIdx.y + 2)][(threadIdx.x + 2)];
          r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
          s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 2)][(threadIdx.x + 2)] = r0;
          g0[pmod((v1 + 1), 2)][v2][((v3 * 2) + threadIdx.y)][((v4 * 8) + threadIdx.x)] = r0;
        }
        if (((((0 <= v1 && v1 <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 8)) && (1 <= ((v3 * 2) + threadIdx.y) && ((v3 * 2) + threadIdx.y) <= 8)) && (1 <= ((v4 * 8) + threadIdx.x) && ((v4 * 8) + threadIdx.x) <= 10))) {
          r1 = s_A[pmod(v1, 2)][1][(threadIdx.y + 2)][(threadIdx.x + 2)];
          r2 = s_A[pmod(v1, 2)][3][(threadIdx.y + 2)][(threadIdx.x + 2)];
          r3 = s_A[pmod(v1, 2)][2][(threadIdx.y + 1)][(threadIdx.x + 2)];
          r4 = s_A[pmod(v1, 2)][2][(threadIdx.y + 3)][(threadIdx.x + 2)];
          r5 = s_A[pmod(v1, 2)][2][(threadIdx.y + 2)][(threadIdx.x + 1)];
          r6 = s_A[pmod(v1, 2)][2][(threadIdx.y + 2)][(threadIdx.x + 3)];
          r7 = s_A[pmod(v1, 2)][2][(threadIdx.y + 2)][(threadIdx.x + 2)];
          r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
          s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 2)][(threadIdx.x + 2)] = r0;
          g0[pmod((v1 + 1), 2)][(v2 + 1)][((v3 * 2) + threadIdx.y)][((v4 * 8) + threadIdx.x)] = r0;
        }
        __syncthreads();
        if (((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= v2 && v2 <= 8)) && (1 <= (((v3 * 2) + threadIdx.y) + -1) && (((v3 * 2) + threadIdx.y) + -1) <= 8)) && (1 <= (((v4 * 8) + threadIdx.x) + -1) && (((v4 * 8) + threadIdx.x) + -1) <= 10))) {
          r1 = s_A[pmod((v1 + 1), 2)][0][(threadIdx.y + 1)][(threadIdx.x + 1)];
          r2 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 1)][(threadIdx.x + 1)];
          r3 = s_A[pmod((v1 + 1), 2)][1][threadIdx.y][(threadIdx.x + 1)];
          r4 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 2)][(threadIdx.x + 1)];
          r5 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 1)][threadIdx.x];
          r6 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 1)][(threadIdx.x + 2)];
          r7 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 1)][(threadIdx.x + 1)];
          r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
          s_A[pmod((v1 + 2), 2)][1][(threadIdx.y + 1)][(threadIdx.x + 1)] = r0;
          g0[pmod((v1 + 2), 2)][v2][(((v3 * 2) + threadIdx.y) + -1)][(((v4 * 8) + threadIdx.x) + -1)] = r0;
        }
        if (((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 8)) && (1 <= (((v3 * 2) + threadIdx.y) + -1) && (((v3 * 2) + threadIdx.y) + -1) <= 8)) && (1 <= (((v4 * 8) + threadIdx.x) + -1) && (((v4 * 8) + threadIdx.x) + -1) <= 10))) {
          r1 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 1)][(threadIdx.x + 1)];
          r2 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.y + 1)][(threadIdx.x + 1)];
          r3 = s_A[pmod((v1 + 1), 2)][2][threadIdx.y][(threadIdx.x + 1)];
          r4 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 2)][(threadIdx.x + 1)];
          r5 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 1)][threadIdx.x];
          r6 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 1)][(threadIdx.x + 2)];
          r7 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 1)][(threadIdx.x + 1)];
          r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
          s_A[pmod((v1 + 2), 2)][2][(threadIdx.y + 1)][(threadIdx.x + 1)] = r0;
          g0[pmod((v1 + 2), 2)][(v2 + 1)][(((v3 * 2) + threadIdx.y) + -1)][(((v4 * 8) + threadIdx.x) + -1)] = r0;
        }
        __syncthreads();
      }
    }
  }
}

// block 8x2x1, 1760 bytes shared
__global__ __launch_bounds__(16) void hybrid_laplacian3d_phase1(float *g0 /* .. per field */, int p0, int p1) {
  __shared__ float s_A[2][4][5][11];
  float r0 /* .. r7 */;
  int v0 = (blockIdx.x + p1);
  int v1 = (p0 * 2);
  int v2 = (v0 * 4);
  for (int v3 = 0; v3 < 5; v3 += 1) {
    for (int v4 = 0; v4 < 2; v4 += 1) {
      if (v4 == 0) {
        for (int v6 = 0; v6 < 14; v6 += 1) {
          int v7 = ((v6 * 16) + (threadIdx.x + (threadIdx.y * 8)));
          if ((((v7 < 220 && (0 <= ((v2 + -1) + pmod(floord(v7, 55), 4)) && ((v2 + -1) + pmod(floord(v7, 55), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)) && (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + pmod(v7, 11)) && (((v4 * 8) + -2) + pmod(v7, 11)) <= 11))) {
            r0 = g0[0][((v2 + -1) + pmod(floord(v7, 55), 4))][(((v3 * 2) + -2) + pmod(floord(v7, 11), 5))][(((v4 * 8) + -2) + pmod(v7, 11))];
            s_A[0][pmod(floord(v7, 55), 4)][pmod(floord(v7, 11), 5)][pmod(v7, 11)] = r0;
          }
        }
        for (int v6 = 0; v6 < 14; v6 += 1) {
          int v7 = ((v6 * 16) + (threadIdx.x + (threadIdx.y * 8)));
          if ((((v7 < 220 && (0 <= ((v2 + -1) + pmod(floord(v7, 55), 4)) && ((v2 + -1) + pmod(floord(v7, 55), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)) && (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + pmod(v7, 11)) && (((v4 * 8) + -2) + pmod(v7, 11)) <= 11))) {
            r0 = g0[1][((v2 + -1) + pmod(floord(v7, 55), 4))][(((v3 * 2) + -2) + pmod(floord(v7, 11), 5))][(((v4 * 8) + -2) + pmod(v7, 11))];
            s_A[1][pmod(floord(v7, 55), 4)][pmod(floord(v7, 11), 5)][pmod(v7, 11)] = r0;
          }
        }
        __syncthreads();
      } else {
        for (int v6 = 0; v6 < 4; v6 += 1) {
          int v7 = ((v6 * 16) + (threadIdx.x + (threadIdx.y * 8)));
          if (v7 < 60) {
            r0 = s_A[0][pmod(floord(v7, 15), 4)][pmod(floord(v7, 3), 5)][(pmod(v7, 3) + 8)];
            s_A[0][pmod(floord(v7, 15), 4)][pmod(floord(v7, 3), 5)][pmod(v7, 3)] = r0;
          }
        }
        for (int v6 = 0; v6 < 4; v6 += 1) {
          int v7 = ((v6 * 16) + (threadIdx.x + (threadIdx.y * 8)));
          if (v7 < 60) {
            r0 = s_A[1][pmod(floord(v7, 15), 4)][pmod(floord(v7, 3), 5)][(pmod(v7, 3) + 8)];
            s_A[1][pmod(floord(v7, 15), 4)][pmod(floord(v7, 3), 5)][pmod(v7, 3)] = r0;
          }
        }
        __syncthreads();
        for (int v6 = 0; v6 < 10; v6 += 1) {
          int v7 = ((v6 * 16) + (threadIdx.x + (threadIdx.y * 8)));
          if ((((v7 < 160 && (0 <= ((v2 + -1) + pmod(floord(v7, 40), 4)) && ((v2 + -1) + pmod(floord(v7, 40), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)) && (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + (pmod(v7, 8) + 3)) && (((v4 * 8) + -2) + (pmod(v7, 8) + 3)) <= 11))) {
            r0 = g0[0][((v2 + -1) + pmod(floord(v7, 40), 4))][(((v3 * 2) + -2) + pmod(floord(v7, 8), 5))][(((v4 * 8) + -2) + (pmod(v7, 8) + 3))];
            s_A[0][pmod(floord(v7, 40), 4)][pmod(floord(v7, 8), 5)][(pmod(v7, 8) + 3)] = r0;
          }
        }
        for (int v6 = 0; v6 < 10; v6 += 1) {
          int v7 = ((v6 * 16) + (threadIdx.x + (threadIdx.y * 8)));
          if ((((v7 < 160 && (0 <= ((v2 + -1) + pmod(floord(v7, 40), 4)) && ((v2 + -1) + pmod(floord(v7, 40), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)) && (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + (pmod(v7, 8) + 3)) && (((v4 * 8) + -2) + (pmod(v7, 8) + 3)) <= 11))) {
            r0 = g0[1][((v2 + -1) + pmod(floord(v7, 40), 4))][(((v3 * 2) + -2) + pmod(floord(v7, 8), 5))][(((v4 * 8) + -2) + (pmod(v7, 8) + 3))];
            s_A[1][pmod(floord(v7, 40), 4)][pmod(floord(v7, 8), 5)][(pmod(v7, 8) + 3)] = r0;
          }
        }
        __syncthreads();
      }
      if ((((((((0 <= v1 && (v1 + 1) <= 3) && 1 <= v2) && (v2 + 1) <= 8) && 2 <= (v3 * 2)) && ((v3 * 2) + 1) <= 8) && 2 <= (v4 * 8)) && ((v4 * 8) + 7) <= 10)) {
        r1 = s_A[pmod(v1, 2)][0][(threadIdx.y + 2)][(threadIdx.x + 2)];
        r2 = s_A[pmod(v1, 2)][2][(threadIdx.y + 2)][(threadIdx.x + 2)];
        r3 = s_A[pmod(v1, 2)][1][(threadIdx.y + 1)][(threadIdx.x + 2)];
        r4 = s_A[pmod(v1, 2)][1][(threadIdx.y + 3)][(threadIdx.x + 2)];
        r5 = s_A[pmod(v1, 2)][1][(threadIdx.y + 2)][(threadIdx.x + 1)];
        r6 = s_A[pmod(v1, 2)][1][(threadIdx.y + 2)][(threadIdx.x + 3)];
        r7 = s_A[pmod(v1, 2)][1][(threadIdx.y + 2)][(threadIdx.x + 2)];
        r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
        s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 2)][(threadIdx.x + 2)] = r0;
        g0[pmod((v1 + 1), 2)][v2][((v3 * 2) + threadIdx.y)][((v4 * 8) + threadIdx.x)] = r0;
        r1 = s_A[pmod(v1, 2)][1][(threadIdx.y + 2)][(threadIdx.x + 2)];
        r2 = s_A[pmod(v1, 2)][3][(threadIdx.y + 2)][(threadIdx.x + 2)];
        r3 = s_A[pmod(v1, 2)][2][(threadIdx.y + 1)][(threadIdx.x + 2)];
        r4 = s_A[pmod(v1, 2)][2][(threadIdx.y + 3)][(threadIdx.x + 2)];
        r5 = s_A[pmod(v1, 2)][2][(threadIdx.y + 2)][(threadIdx.x + 1)];
        r6 = s_A[pmod(v1, 2)][2][(threadIdx.y + 2)][(threadIdx.x + 3)];
        r7 = s_A[pmod(v1, 2)][2][(threadIdx.y + 2)][(threadIdx.x + 2)];
        r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
        s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 2)][(threadIdx.x + 2)] = r0;
        g0[pmod((v1 + 1), 2)][(v2 + 1)][((v3 * 2) + threadIdx.y)][((v4 * 8) + threadIdx.x)] = r0;
        __syncthreads();
        r1 = s_A[pmod((v1 + 1), 2)][0][(threadIdx.y + 1)][(threadIdx.x + 1)];
        r2 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 1)][(threadIdx.x + 1)];
        r3 = s_A[pmod((v1 + 1), 2)][1][threadIdx.y][(threadIdx.x + 1)];
        r4 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 2)][(threadIdx.x + 1)];
        r5 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 1)][threadIdx.x];
        r6 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 1)][(threadIdx.x + 2)];
        r7 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 1)][(threadIdx.x + 1)];
        r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
        s_A[pmod((v1 + 2), 2)][1][(threadIdx.y + 1)][(threadIdx.x + 1)] = r0;
        g0[pmod((v1 + 2), 2)][v2][(((v3 * 2) + threadIdx.y) + -1)][(((v4 * 8) + threadIdx.x) + -1)] = r0;
        r1 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 1)][(threadIdx.x + 1)];
        r2 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.y + 1)][(threadIdx.x + 1)];
        r3 = s_A[pmod((v1 + 1), 2)][2][threadIdx.y][(threadIdx.x + 1)];
        r4 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 2)][(threadIdx.x + 1)];
        r5 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 1)][threadIdx.x];
        r6 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 1)][(threadIdx.x + 2)];
        r7 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 1)][(threadIdx.x + 1)];
        r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
        s_A[pmod((v1 + 2), 2)][2][(threadIdx.y + 1)][(threadIdx.x + 1)] = r0;
        g0[pmod((v1 + 2), 2)][(v2 + 1)][(((v3 * 2) + threadIdx.y) + -1)][(((v4 * 8) + threadIdx.x) + -1)] = r0;
        __syncthreads();
      } else {
        if (((((0 <= v1 && v1 <= 3) && (1 <= v2 && v2 <= 8)) && (1 <= ((v3 * 2) + threadIdx.y) && ((v3 * 2) + threadIdx.y) <= 8)) && (1 <= ((v4 * 8) + threadIdx.x) && ((v4 * 8) + threadIdx.x) <= 10))) {
          r1 = s_A[pmod(v1, 2)][0][(threadIdx.y + 2)][(threadIdx.x + 2)];
          r2 = s_A[pmod(v1, 2)][2][(threadIdx.y + 2)][(threadIdx.x + 2)];
          r3 = s_A[pmod(v1, 2)][1][(threadIdx.y + 1)][(threadIdx.x + 2)];
          r4 = s_A[pmod(v1, 2)][1][(threadIdx.y + 3)][(threadIdx.x + 2)];
          r5 = s_A[pmod(v1, 2)][1][(threadIdx.y + 2)][(threadIdx.x + 1)];
          r6 = s_A[pmod(v1, 2)][1][(threadIdx.y + 2)][(threadIdx.x + 3)];
          r7 = s_A[pmod(v1, 2)][1][(threadIdx.y + 2)][(threadIdx.x + 2)];
          r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
          s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 2)][(threadIdx.x + 2)] = r0;
          g0[pmod((v1 + 1), 2)][v2][((v3 * 2) + threadIdx.y)][((v4 * 8) + threadIdx.x)] = r0;
        }
        if (((((0 <= v1 && v1 <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 8)) && (1 <= ((v3 * 2) + threadIdx.y) && ((v3 * 2) + threadIdx.y) <= 8)) && (1 <= ((v4 * 8) + threadIdx.x) && ((v4 * 8) + threadIdx.x) <= 10))) {
          r1 = s_A[pmod(v1, 2)][1][(threadIdx.y + 2)][(threadIdx.x + 2)];
          r2 = s_A[pmod(v1, 2)][3][(threadIdx.y + 2)][(threadIdx.x + 2)];
          r3 = s_A[pmod(v1, 2)][2][(threadIdx.y + 1)][(threadIdx.x + 2)];
          r4 = s_A[pmod(v1, 2)][2][(threadIdx.y + 3)][(threadIdx.x + 2)];
          r5 = s_A[pmod(v1, 2)][2][(threadIdx.y + 2)][(threadIdx.x + 1)];
          r6 = s_A[pmod(v1, 2)][2][(threadIdx.y + 2)][(threadIdx.x + 3)];
          r7 = s_A[pmod(v1, 2)][2][(threadIdx.y + 2)][(threadIdx.x + 2)];
          r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
          s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 2)][(threadIdx.x + 2)] = r0;
          g0[pmod((v1 + 1), 2)][(v2 + 1)][((v3 * 2) + threadIdx.y)][((v4 * 8) + threadIdx.x)] = r0;
        }
        __syncthreads();
        if (((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= v2 && v2 <= 8)) && (1 <= (((v3 * 2) + threadIdx.y) + -1) && (((v3 * 2) + threadIdx.y) + -1) <= 8)) && (1 <= (((v4 * 8) + threadIdx.x) + -1) && (((v4 * 8) + threadIdx.x) + -1) <= 10))) {
          r1 = s_A[pmod((v1 + 1), 2)][0][(threadIdx.y + 1)][(threadIdx.x + 1)];
          r2 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 1)][(threadIdx.x + 1)];
          r3 = s_A[pmod((v1 + 1), 2)][1][threadIdx.y][(threadIdx.x + 1)];
          r4 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 2)][(threadIdx.x + 1)];
          r5 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 1)][threadIdx.x];
          r6 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 1)][(threadIdx.x + 2)];
          r7 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 1)][(threadIdx.x + 1)];
          r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
          s_A[pmod((v1 + 2), 2)][1][(threadIdx.y + 1)][(threadIdx.x + 1)] = r0;
          g0[pmod((v1 + 2), 2)][v2][(((v3 * 2) + threadIdx.y) + -1)][(((v4 * 8) + threadIdx.x) + -1)] = r0;
        }
        if (((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 8)) && (1 <= (((v3 * 2) + threadIdx.y) + -1) && (((v3 * 2) + threadIdx.y) + -1) <= 8)) && (1 <= (((v4 * 8) + threadIdx.x) + -1) && (((v4 * 8) + threadIdx.x) + -1) <= 10))) {
          r1 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.y + 1)][(threadIdx.x + 1)];
          r2 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.y + 1)][(threadIdx.x + 1)];
          r3 = s_A[pmod((v1 + 1), 2)][2][threadIdx.y][(threadIdx.x + 1)];
          r4 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 2)][(threadIdx.x + 1)];
          r5 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 1)][threadIdx.x];
          r6 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 1)][(threadIdx.x + 2)];
          r7 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.y + 1)][(threadIdx.x + 1)];
          r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
          s_A[pmod((v1 + 2), 2)][2][(threadIdx.y + 1)][(threadIdx.x + 1)] = r0;
          g0[pmod((v1 + 2), 2)][(v2 + 1)][(((v3 * 2) + threadIdx.y) + -1)][(((v4 * 8) + threadIdx.x) + -1)] = r0;
        }
        __syncthreads();
      }
    }
  }
}

