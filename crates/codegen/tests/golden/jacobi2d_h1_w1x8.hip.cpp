#include <hip/hip_runtime.h>

// block 8x1x1, 624 bytes shared
__global__ __launch_bounds__(8) void hybrid_jacobi2d_phase0(float *g0 /* .. per field */, int p0, int p1) {
  __shared__ float s_A[2][6][13];
  float r0 /* .. r5 */;
  int v0 = (blockIdx.x + p1);
  int v1 = ((p0 * 4) + -2);
  int v2 = ((v0 * 6) + -3);
  for (int v3 = 0; v3 < 3; v3 += 1) {
    if (v3 == 0) {
      for (int v5 = 0; v5 < 10; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (((v6 < 78 && (0 <= ((v2 + -1) + pmod(floord(v6, 13), 6)) && ((v2 + -1) + pmod(floord(v6, 13), 6)) <= 19)) && (0 <= (((v3 * 8) + -4) + pmod(v6, 13)) && (((v3 * 8) + -4) + pmod(v6, 13)) <= 19))) {
          r0 = g0[0][((v2 + -1) + pmod(floord(v6, 13), 6))][(((v3 * 8) + -4) + pmod(v6, 13))];
          s_A[0][pmod(floord(v6, 13), 6)][pmod(v6, 13)] = r0;
        }
      }
      for (int v5 = 0; v5 < 10; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (((v6 < 78 && (0 <= ((v2 + -1) + pmod(floord(v6, 13), 6)) && ((v2 + -1) + pmod(floord(v6, 13), 6)) <= 19)) && (0 <= (((v3 * 8) + -4) + pmod(v6, 13)) && (((v3 * 8) + -4) + pmod(v6, 13)) <= 19))) {
          r0 = g0[1][((v2 + -1) + pmod(floord(v6, 13), 6))][(((v3 * 8) + -4) + pmod(v6, 13))];
          s_A[1][pmod(floord(v6, 13), 6)][pmod(v6, 13)] = r0;
        }
      }
      __syncthreads();
    } else {
      for (int v5 = 0; v5 < 4; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (v6 < 30) {
          r0 = s_A[0][pmod(floord(v6, 5), 6)][(pmod(v6, 5) + 8)];
          s_A[0][pmod(floord(v6, 5), 6)][pmod(v6, 5)] = r0;
        }
      }
      for (int v5 = 0; v5 < 4; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (v6 < 30) {
          r0 = s_A[1][pmod(floord(v6, 5), 6)][(pmod(v6, 5) + 8)];
          s_A[1][pmod(floord(v6, 5), 6)][pmod(v6, 5)] = r0;
        }
      }
      __syncthreads();
      for (int v5 = 0; v5 < 6; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (((v6 < 48 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 6)) && ((v2 + -1) + pmod(floord(v6, 8), 6)) <= 19)) && (0 <= (((v3 * 8) + -4) + (pmod(v6, 8) + 5)) && (((v3 * 8) + -4) + (pmod(v6, 8) + 5)) <= 19))) {
          r0 = g0[0][((v2 + -1) + pmod(floord(v6, 8), 6))][(((v3 * 8) + -4) + (pmod(v6, 8) + 5))];
          s_A[0][pmod(floord(v6, 8), 6)][(pmod(v6, 8) + 5)] = r0;
        }
      }
      for (int v5 = 0; v5 < 6; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (((v6 < 48 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 6)) && ((v2 + -1) + pmod(floord(v6, 8), 6)) <= 19)) && (0 <= (((v3 * 8) + -4) + (pmod(v6, 8) + 5)) && (((v3 * 8) + -4) + (pmod(v6, 8) + 5)) <= 19))) {
          r0 = g0[1][((v2 + -1) + pmod(floord(v6, 8), 6))][(((v3 * 8) + -4) + (pmod(v6, 8) + 5))];
          s_A[1][pmod(floord(v6, 8), 6)][(pmod(v6, 8) + 5)] = r0;
        }
      }
      __syncthreads();
    }
    if ((((((0 <= v1 && (v1 + 3) <= 3) && 1 <= v2) && (v2 + 3) <= 18) && 4 <= (v3 * 8)) && ((v3 * 8) + 7) <= 18)) {
      r1 = s_A[pmod(v1, 2)][2][(threadIdx.x + 4)];
      r2 = s_A[pmod(v1, 2)][3][(threadIdx.x + 4)];
      r3 = s_A[pmod(v1, 2)][1][(threadIdx.x + 4)];
      r4 = s_A[pmod(v1, 2)][2][(threadIdx.x + 5)];
      r5 = s_A[pmod(v1, 2)][2][(threadIdx.x + 3)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 4)] = r0;
      g0[pmod((v1 + 1), 2)][(v2 + 1)][((v3 * 8) + threadIdx.x)] = r0;
      r1 = s_A[pmod(v1, 2)][3][(threadIdx.x + 4)];
      r2 = s_A[pmod(v1, 2)][4][(threadIdx.x + 4)];
      r3 = s_A[pmod(v1, 2)][2][(threadIdx.x + 4)];
      r4 = s_A[pmod(v1, 2)][3][(threadIdx.x + 5)];
      r5 = s_A[pmod(v1, 2)][3][(threadIdx.x + 3)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 4)] = r0;
      g0[pmod((v1 + 1), 2)][(v2 + 2)][((v3 * 8) + threadIdx.x)] = r0;
      __syncthreads();
      r1 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.x + 3)];
      r2 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 3)];
      r3 = s_A[pmod((v1 + 1), 2)][0][(threadIdx.x + 3)];
      r4 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.x + 4)];
      r5 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.x + 2)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 3)] = r0;
      g0[pmod((v1 + 2), 2)][v2][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      r1 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 3)];
      r2 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 3)];
      r3 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.x + 3)];
      r4 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 4)];
      r5 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 2)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 3)] = r0;
      g0[pmod((v1 + 2), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      r1 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 3)];
      r2 = s_A[pmod((v1 + 1), 2)][4][(threadIdx.x + 3)];
      r3 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 3)];
      r4 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 4)];
      r5 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 2)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 3)] = r0;
      g0[pmod((v1 + 2), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      r1 = s_A[pmod((v1 + 1), 2)][4][(threadIdx.x + 3)];
      r2 = s_A[pmod((v1 + 1), 2)][5][(threadIdx.x + 3)];
      r3 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 3)];
      r4 = s_A[pmod((v1 + 1), 2)][4][(threadIdx.x + 4)];
      r5 = s_A[pmod((v1 + 1), 2)][4][(threadIdx.x + 2)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 3)] = r0;
      g0[pmod((v1 + 2), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      __syncthreads();
      r1 = s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 2)];
      r2 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 2)];
      r3 = s_A[pmod((v1 + 2), 2)][0][(threadIdx.x + 2)];
      r4 = s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 3)];
      r5 = s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 1)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 3), 2)][1][(threadIdx.x + 2)] = r0;
      g0[pmod((v1 + 3), 2)][v2][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      r1 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 2)];
      r2 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 2)];
      r3 = s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 2)];
      r4 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 3)];
      r5 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 1)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 3), 2)][2][(threadIdx.x + 2)] = r0;
      g0[pmod((v1 + 3), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      r1 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 2)];
      r2 = s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 2)];
      r3 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 2)];
      r4 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 3)];
      r5 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 1)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 3), 2)][3][(threadIdx.x + 2)] = r0;
      g0[pmod((v1 + 3), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      r1 = s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 2)];
      r2 = s_A[pmod((v1 + 2), 2)][5][(threadIdx.x + 2)];
      r3 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 2)];
      r4 = s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 3)];
      r5 = s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 1)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 3), 2)][4][(threadIdx.x + 2)] = r0;
      g0[pmod((v1 + 3), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      __syncthreads();
      r1 = s_A[pmod((v1 + 3), 2)][2][(threadIdx.x + 1)];
      r2 = s_A[pmod((v1 + 3), 2)][3][(threadIdx.x + 1)];
      r3 = s_A[pmod((v1 + 3), 2)][1][(threadIdx.x + 1)];
      r4 = s_A[pmod((v1 + 3), 2)][2][(threadIdx.x + 2)];
      r5 = s_A[pmod((v1 + 3), 2)][2][threadIdx.x];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 4), 2)][2][(threadIdx.x + 1)] = r0;
      g0[pmod((v1 + 4), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      r1 = s_A[pmod((v1 + 3), 2)][3][(threadIdx.x + 1)];
      r2 = s_A[pmod((v1 + 3), 2)][4][(threadIdx.x + 1)];
      r3 = s_A[pmod((v1 + 3), 2)][2][(threadIdx.x + 1)];
      r4 = s_A[pmod((v1 + 3), 2)][3][(threadIdx.x + 2)];
      r5 = s_A[pmod((v1 + 3), 2)][3][threadIdx.x];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 4), 2)][3][(threadIdx.x + 1)] = r0;
      g0[pmod((v1 + 4), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      __syncthreads();
    } else {
      if ((((0 <= v1 && v1 <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= ((v3 * 8) + threadIdx.x) && ((v3 * 8) + threadIdx.x) <= 18))) {
        r1 = s_A[pmod(v1, 2)][2][(threadIdx.x + 4)];
        r2 = s_A[pmod(v1, 2)][3][(threadIdx.x + 4)];
        r3 = s_A[pmod(v1, 2)][1][(threadIdx.x + 4)];
        r4 = s_A[pmod(v1, 2)][2][(threadIdx.x + 5)];
        r5 = s_A[pmod(v1, 2)][2][(threadIdx.x + 3)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 4)] = r0;
        g0[pmod((v1 + 1), 2)][(v2 + 1)][((v3 * 8) + threadIdx.x)] = r0;
      }
      if ((((0 <= v1 && v1 <= 3) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= ((v3 * 8) + threadIdx.x) && ((v3 * 8) + threadIdx.x) <= 18))) {
        r1 = s_A[pmod(v1, 2)][3][(threadIdx.x + 4)];
        r2 = s_A[pmod(v1, 2)][4][(threadIdx.x + 4)];
        r3 = s_A[pmod(v1, 2)][2][(threadIdx.x + 4)];
        r4 = s_A[pmod(v1, 2)][3][(threadIdx.x + 5)];
        r5 = s_A[pmod(v1, 2)][3][(threadIdx.x + 3)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 4)] = r0;
        g0[pmod((v1 + 1), 2)][(v2 + 2)][((v3 * 8) + threadIdx.x)] = r0;
      }
      __syncthreads();
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -1) && (((v3 * 8) + threadIdx.x) + -1) <= 18))) {
        r1 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.x + 3)];
        r2 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 3)];
        r3 = s_A[pmod((v1 + 1), 2)][0][(threadIdx.x + 3)];
        r4 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.x + 4)];
        r5 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.x + 2)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 3)] = r0;
        g0[pmod((v1 + 2), 2)][v2][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -1) && (((v3 * 8) + threadIdx.x) + -1) <= 18))) {
        r1 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 3)];
        r2 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 3)];
        r3 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.x + 3)];
        r4 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 4)];
        r5 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 2)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 3)] = r0;
        g0[pmod((v1 + 2), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -1) && (((v3 * 8) + threadIdx.x) + -1) <= 18))) {
        r1 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 3)];
        r2 = s_A[pmod((v1 + 1), 2)][4][(threadIdx.x + 3)];
        r3 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 3)];
        r4 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 4)];
        r5 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 2)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 3)] = r0;
        g0[pmod((v1 + 2), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -1) && (((v3 * 8) + threadIdx.x) + -1) <= 18))) {
        r1 = s_A[pmod((v1 + 1), 2)][4][(threadIdx.x + 3)];
        r2 = s_A[pmod((v1 + 1), 2)][5][(threadIdx.x + 3)];
        r3 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 3)];
        r4 = s_A[pmod((v1 + 1), 2)][4][(threadIdx.x + 4)];
        r5 = s_A[pmod((v1 + 1), 2)][4][(threadIdx.x + 2)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 3)] = r0;
        g0[pmod((v1 + 2), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      }
      __syncthreads();
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 3) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 2)];
        r2 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 2)];
        r3 = s_A[pmod((v1 + 2), 2)][0][(threadIdx.x + 2)];
        r4 = s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 3)];
        r5 = s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 1)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 3), 2)][1][(threadIdx.x + 2)] = r0;
        g0[pmod((v1 + 3), 2)][v2][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 2)];
        r2 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 2)];
        r3 = s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 2)];
        r4 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 3)];
        r5 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 1)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 3), 2)][2][(threadIdx.x + 2)] = r0;
        g0[pmod((v1 + 3), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 3) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 2)];
        r2 = s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 2)];
        r3 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 2)];
        r4 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 3)];
        r5 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 1)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 3), 2)][3][(threadIdx.x + 2)] = r0;
        g0[pmod((v1 + 3), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 3) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 2)];
        r2 = s_A[pmod((v1 + 2), 2)][5][(threadIdx.x + 2)];
        r3 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 2)];
        r4 = s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 3)];
        r5 = s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 1)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 3), 2)][4][(threadIdx.x + 2)] = r0;
        g0[pmod((v1 + 3), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      __syncthreads();
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -3) && (((v3 * 8) + threadIdx.x) + -3) <= 18))) {
        r1 = s_A[pmod((v1 + 3), 2)][2][(threadIdx.x + 1)];
        r2 = s_A[pmod((v1 + 3), 2)][3][(threadIdx.x + 1)];
        r3 = s_A[pmod((v1 + 3), 2)][1][(threadIdx.x + 1)];
        r4 = s_A[pmod((v1 + 3), 2)][2][(threadIdx.x + 2)];
        r5 = s_A[pmod((v1 + 3), 2)][2][threadIdx.x];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 4), 2)][2][(threadIdx.x + 1)] = r0;
        g0[pmod((v1 + 4), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 3) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -3) && (((v3 * 8) + threadIdx.x) + -3) <= 18))) {
        r1 = s_A[pmod((v1 + 3), 2)][3][(threadIdx.x + 1)];
        r2 = s_A[pmod((v1 + 3), 2)][4][(threadIdx.x + 1)];
        r3 = s_A[pmod((v1 + 3), 2)][2][(threadIdx.x + 1)];
        r4 = s_A[pmod((v1 + 3), 2)][3][(threadIdx.x + 2)];
        r5 = s_A[pmod((v1 + 3), 2)][3][threadIdx.x];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 4), 2)][3][(threadIdx.x + 1)] = r0;
        g0[pmod((v1 + 4), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      }
      __syncthreads();
    }
  }
}

// block 8x1x1, 624 bytes shared
__global__ __launch_bounds__(8) void hybrid_jacobi2d_phase1(float *g0 /* .. per field */, int p0, int p1) {
  __shared__ float s_A[2][6][13];
  float r0 /* .. r5 */;
  int v0 = (blockIdx.x + p1);
  int v1 = (p0 * 4);
  int v2 = (v0 * 6);
  for (int v3 = 0; v3 < 3; v3 += 1) {
    if (v3 == 0) {
      for (int v5 = 0; v5 < 10; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (((v6 < 78 && (0 <= ((v2 + -1) + pmod(floord(v6, 13), 6)) && ((v2 + -1) + pmod(floord(v6, 13), 6)) <= 19)) && (0 <= (((v3 * 8) + -4) + pmod(v6, 13)) && (((v3 * 8) + -4) + pmod(v6, 13)) <= 19))) {
          r0 = g0[0][((v2 + -1) + pmod(floord(v6, 13), 6))][(((v3 * 8) + -4) + pmod(v6, 13))];
          s_A[0][pmod(floord(v6, 13), 6)][pmod(v6, 13)] = r0;
        }
      }
      for (int v5 = 0; v5 < 10; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (((v6 < 78 && (0 <= ((v2 + -1) + pmod(floord(v6, 13), 6)) && ((v2 + -1) + pmod(floord(v6, 13), 6)) <= 19)) && (0 <= (((v3 * 8) + -4) + pmod(v6, 13)) && (((v3 * 8) + -4) + pmod(v6, 13)) <= 19))) {
          r0 = g0[1][((v2 + -1) + pmod(floord(v6, 13), 6))][(((v3 * 8) + -4) + pmod(v6, 13))];
          s_A[1][pmod(floord(v6, 13), 6)][pmod(v6, 13)] = r0;
        }
      }
      __syncthreads();
    } else {
      for (int v5 = 0; v5 < 4; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (v6 < 30) {
          r0 = s_A[0][pmod(floord(v6, 5), 6)][(pmod(v6, 5) + 8)];
          s_A[0][pmod(floord(v6, 5), 6)][pmod(v6, 5)] = r0;
        }
      }
      for (int v5 = 0; v5 < 4; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (v6 < 30) {
          r0 = s_A[1][pmod(floord(v6, 5), 6)][(pmod(v6, 5) + 8)];
          s_A[1][pmod(floord(v6, 5), 6)][pmod(v6, 5)] = r0;
        }
      }
      __syncthreads();
      for (int v5 = 0; v5 < 6; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (((v6 < 48 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 6)) && ((v2 + -1) + pmod(floord(v6, 8), 6)) <= 19)) && (0 <= (((v3 * 8) + -4) + (pmod(v6, 8) + 5)) && (((v3 * 8) + -4) + (pmod(v6, 8) + 5)) <= 19))) {
          r0 = g0[0][((v2 + -1) + pmod(floord(v6, 8), 6))][(((v3 * 8) + -4) + (pmod(v6, 8) + 5))];
          s_A[0][pmod(floord(v6, 8), 6)][(pmod(v6, 8) + 5)] = r0;
        }
      }
      for (int v5 = 0; v5 < 6; v5 += 1) {
        int v6 = ((v5 * 8) + (threadIdx.x + (threadIdx.y * 8)));
        if (((v6 < 48 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 6)) && ((v2 + -1) + pmod(floord(v6, 8), 6)) <= 19)) && (0 <= (((v3 * 8) + -4) + (pmod(v6, 8) + 5)) && (((v3 * 8) + -4) + (pmod(v6, 8) + 5)) <= 19))) {
          r0 = g0[1][((v2 + -1) + pmod(floord(v6, 8), 6))][(((v3 * 8) + -4) + (pmod(v6, 8) + 5))];
          s_A[1][pmod(floord(v6, 8), 6)][(pmod(v6, 8) + 5)] = r0;
        }
      }
      __syncthreads();
    }
    if ((((((0 <= v1 && (v1 + 3) <= 3) && 1 <= v2) && (v2 + 3) <= 18) && 4 <= (v3 * 8)) && ((v3 * 8) + 7) <= 18)) {
      r1 = s_A[pmod(v1, 2)][2][(threadIdx.x + 4)];
      r2 = s_A[pmod(v1, 2)][3][(threadIdx.x + 4)];
      r3 = s_A[pmod(v1, 2)][1][(threadIdx.x + 4)];
      r4 = s_A[pmod(v1, 2)][2][(threadIdx.x + 5)];
      r5 = s_A[pmod(v1, 2)][2][(threadIdx.x + 3)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 4)] = r0;
      g0[pmod((v1 + 1), 2)][(v2 + 1)][((v3 * 8) + threadIdx.x)] = r0;
      r1 = s_A[pmod(v1, 2)][3][(threadIdx.x + 4)];
      r2 = s_A[pmod(v1, 2)][4][(threadIdx.x + 4)];
      r3 = s_A[pmod(v1, 2)][2][(threadIdx.x + 4)];
      r4 = s_A[pmod(v1, 2)][3][(threadIdx.x + 5)];
      r5 = s_A[pmod(v1, 2)][3][(threadIdx.x + 3)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 4)] = r0;
      g0[pmod((v1 + 1), 2)][(v2 + 2)][((v3 * 8) + threadIdx.x)] = r0;
      __syncthreads();
      r1 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.x + 3)];
      r2 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 3)];
      r3 = s_A[pmod((v1 + 1), 2)][0][(threadIdx.x + 3)];
      r4 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.x + 4)];
      r5 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.x + 2)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 3)] = r0;
      g0[pmod((v1 + 2), 2)][v2][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      r1 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 3)];
      r2 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 3)];
      r3 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.x + 3)];
      r4 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 4)];
      r5 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 2)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 3)] = r0;
      g0[pmod((v1 + 2), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      r1 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 3)];
      r2 = s_A[pmod((v1 + 1), 2)][4][(threadIdx.x + 3)];
      r3 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 3)];
      r4 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 4)];
      r5 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 2)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 3)] = r0;
      g0[pmod((v1 + 2), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      r1 = s_A[pmod((v1 + 1), 2)][4][(threadIdx.x + 3)];
      r2 = s_A[pmod((v1 + 1), 2)][5][(threadIdx.x + 3)];
      r3 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 3)];
      r4 = s_A[pmod((v1 + 1), 2)][4][(threadIdx.x + 4)];
      r5 = s_A[pmod((v1 + 1), 2)][4][(threadIdx.x + 2)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 3)] = r0;
      g0[pmod((v1 + 2), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      __syncthreads();
      r1 = s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 2)];
      r2 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 2)];
      r3 = s_A[pmod((v1 + 2), 2)][0][(threadIdx.x + 2)];
      r4 = s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 3)];
      r5 = s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 1)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 3), 2)][1][(threadIdx.x + 2)] = r0;
      g0[pmod((v1 + 3), 2)][v2][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      r1 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 2)];
      r2 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 2)];
      r3 = s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 2)];
      r4 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 3)];
      r5 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 1)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 3), 2)][2][(threadIdx.x + 2)] = r0;
      g0[pmod((v1 + 3), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      r1 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 2)];
      r2 = s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 2)];
      r3 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 2)];
      r4 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 3)];
      r5 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 1)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 3), 2)][3][(threadIdx.x + 2)] = r0;
      g0[pmod((v1 + 3), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      r1 = s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 2)];
      r2 = s_A[pmod((v1 + 2), 2)][5][(threadIdx.x + 2)];
      r3 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 2)];
      r4 = s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 3)];
      r5 = s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 1)];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 3), 2)][4][(threadIdx.x + 2)] = r0;
      g0[pmod((v1 + 3), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      __syncthreads();
      r1 = s_A[pmod((v1 + 3), 2)][2][(threadIdx.x + 1)];
      r2 = s_A[pmod((v1 + 3), 2)][3][(threadIdx.x + 1)];
      r3 = s_A[pmod((v1 + 3), 2)][1][(threadIdx.x + 1)];
      r4 = s_A[pmod((v1 + 3), 2)][2][(threadIdx.x + 2)];
      r5 = s_A[pmod((v1 + 3), 2)][2][threadIdx.x];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 4), 2)][2][(threadIdx.x + 1)] = r0;
      g0[pmod((v1 + 4), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      r1 = s_A[pmod((v1 + 3), 2)][3][(threadIdx.x + 1)];
      r2 = s_A[pmod((v1 + 3), 2)][4][(threadIdx.x + 1)];
      r3 = s_A[pmod((v1 + 3), 2)][2][(threadIdx.x + 1)];
      r4 = s_A[pmod((v1 + 3), 2)][3][(threadIdx.x + 2)];
      r5 = s_A[pmod((v1 + 3), 2)][3][threadIdx.x];
      r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
      s_A[pmod((v1 + 4), 2)][3][(threadIdx.x + 1)] = r0;
      g0[pmod((v1 + 4), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      __syncthreads();
    } else {
      if ((((0 <= v1 && v1 <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= ((v3 * 8) + threadIdx.x) && ((v3 * 8) + threadIdx.x) <= 18))) {
        r1 = s_A[pmod(v1, 2)][2][(threadIdx.x + 4)];
        r2 = s_A[pmod(v1, 2)][3][(threadIdx.x + 4)];
        r3 = s_A[pmod(v1, 2)][1][(threadIdx.x + 4)];
        r4 = s_A[pmod(v1, 2)][2][(threadIdx.x + 5)];
        r5 = s_A[pmod(v1, 2)][2][(threadIdx.x + 3)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 4)] = r0;
        g0[pmod((v1 + 1), 2)][(v2 + 1)][((v3 * 8) + threadIdx.x)] = r0;
      }
      if ((((0 <= v1 && v1 <= 3) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= ((v3 * 8) + threadIdx.x) && ((v3 * 8) + threadIdx.x) <= 18))) {
        r1 = s_A[pmod(v1, 2)][3][(threadIdx.x + 4)];
        r2 = s_A[pmod(v1, 2)][4][(threadIdx.x + 4)];
        r3 = s_A[pmod(v1, 2)][2][(threadIdx.x + 4)];
        r4 = s_A[pmod(v1, 2)][3][(threadIdx.x + 5)];
        r5 = s_A[pmod(v1, 2)][3][(threadIdx.x + 3)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 4)] = r0;
        g0[pmod((v1 + 1), 2)][(v2 + 2)][((v3 * 8) + threadIdx.x)] = r0;
      }
      __syncthreads();
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -1) && (((v3 * 8) + threadIdx.x) + -1) <= 18))) {
        r1 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.x + 3)];
        r2 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 3)];
        r3 = s_A[pmod((v1 + 1), 2)][0][(threadIdx.x + 3)];
        r4 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.x + 4)];
        r5 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.x + 2)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 3)] = r0;
        g0[pmod((v1 + 2), 2)][v2][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -1) && (((v3 * 8) + threadIdx.x) + -1) <= 18))) {
        r1 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 3)];
        r2 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 3)];
        r3 = s_A[pmod((v1 + 1), 2)][1][(threadIdx.x + 3)];
        r4 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 4)];
        r5 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 2)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 3)] = r0;
        g0[pmod((v1 + 2), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -1) && (((v3 * 8) + threadIdx.x) + -1) <= 18))) {
        r1 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 3)];
        r2 = s_A[pmod((v1 + 1), 2)][4][(threadIdx.x + 3)];
        r3 = s_A[pmod((v1 + 1), 2)][2][(threadIdx.x + 3)];
        r4 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 4)];
        r5 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 2)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 3)] = r0;
        g0[pmod((v1 + 2), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -1) && (((v3 * 8) + threadIdx.x) + -1) <= 18))) {
        r1 = s_A[pmod((v1 + 1), 2)][4][(threadIdx.x + 3)];
        r2 = s_A[pmod((v1 + 1), 2)][5][(threadIdx.x + 3)];
        r3 = s_A[pmod((v1 + 1), 2)][3][(threadIdx.x + 3)];
        r4 = s_A[pmod((v1 + 1), 2)][4][(threadIdx.x + 4)];
        r5 = s_A[pmod((v1 + 1), 2)][4][(threadIdx.x + 2)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 3)] = r0;
        g0[pmod((v1 + 2), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -1)] = r0;
      }
      __syncthreads();
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 3) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 2)];
        r2 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 2)];
        r3 = s_A[pmod((v1 + 2), 2)][0][(threadIdx.x + 2)];
        r4 = s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 3)];
        r5 = s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 1)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 3), 2)][1][(threadIdx.x + 2)] = r0;
        g0[pmod((v1 + 3), 2)][v2][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 2)];
        r2 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 2)];
        r3 = s_A[pmod((v1 + 2), 2)][1][(threadIdx.x + 2)];
        r4 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 3)];
        r5 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 1)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 3), 2)][2][(threadIdx.x + 2)] = r0;
        g0[pmod((v1 + 3), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 3) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 2)];
        r2 = s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 2)];
        r3 = s_A[pmod((v1 + 2), 2)][2][(threadIdx.x + 2)];
        r4 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 3)];
        r5 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 1)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 3), 2)][3][(threadIdx.x + 2)] = r0;
        g0[pmod((v1 + 3), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 3) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -2) && (((v3 * 8) + threadIdx.x) + -2) <= 18))) {
        r1 = s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 2)];
        r2 = s_A[pmod((v1 + 2), 2)][5][(threadIdx.x + 2)];
        r3 = s_A[pmod((v1 + 2), 2)][3][(threadIdx.x + 2)];
        r4 = s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 3)];
        r5 = s_A[pmod((v1 + 2), 2)][4][(threadIdx.x + 1)];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 3), 2)][4][(threadIdx.x + 2)] = r0;
        g0[pmod((v1 + 3), 2)][(v2 + 3)][(((v3 * 8) + threadIdx.x) + -2)] = r0;
      }
      __syncthreads();
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -3) && (((v3 * 8) + threadIdx.x) + -3) <= 18))) {
        r1 = s_A[pmod((v1 + 3), 2)][2][(threadIdx.x + 1)];
        r2 = s_A[pmod((v1 + 3), 2)][3][(threadIdx.x + 1)];
        r3 = s_A[pmod((v1 + 3), 2)][1][(threadIdx.x + 1)];
        r4 = s_A[pmod((v1 + 3), 2)][2][(threadIdx.x + 2)];
        r5 = s_A[pmod((v1 + 3), 2)][2][threadIdx.x];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 4), 2)][2][(threadIdx.x + 1)] = r0;
        g0[pmod((v1 + 4), 2)][(v2 + 1)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 3) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + threadIdx.x) + -3) && (((v3 * 8) + threadIdx.x) + -3) <= 18))) {
        r1 = s_A[pmod((v1 + 3), 2)][3][(threadIdx.x + 1)];
        r2 = s_A[pmod((v1 + 3), 2)][4][(threadIdx.x + 1)];
        r3 = s_A[pmod((v1 + 3), 2)][2][(threadIdx.x + 1)];
        r4 = s_A[pmod((v1 + 3), 2)][3][(threadIdx.x + 2)];
        r5 = s_A[pmod((v1 + 3), 2)][3][threadIdx.x];
        r0 = (0.2f * ((((r1 + r2) + r3) + r4) + r5));
        s_A[pmod((v1 + 4), 2)][3][(threadIdx.x + 1)] = r0;
        g0[pmod((v1 + 4), 2)][(v2 + 2)][(((v3 * 8) + threadIdx.x) + -3)] = r0;
      }
      __syncthreads();
    }
  }
}

