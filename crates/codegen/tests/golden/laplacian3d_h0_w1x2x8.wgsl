// block 8x2x1, 1760 bytes workgroup memory
@group(0) @binding(0) var<storage, read_write> g0: array<f32>;
struct Params { p0: i32, p1: i32 }
@group(1) @binding(0) var<uniform> P: Params;
var<workgroup> s_A: array<array<array<array<f32, 11>, 5>, 4>, 2>;
override plane_stride: i32 = 1;
override stride0: i32 = 1;
override stride1: i32 = 1;
fn gidx(plane: i32, i0: i32, i1: i32, i2: i32) -> u32 { return u32(plane * plane_stride + i0 * stride0 + i1 * stride1 + i2); }
fn floord(a: i32, b: i32) -> i32 { var q = a / b; if ((a % b != 0) && ((a < 0) != (b < 0))) { q = q - 1; } return q; }
fn pmod(a: i32, b: i32) -> i32 { let r = a % b; if (r < 0) { return r + b; } return r; }
@compute @workgroup_size(8, 2, 1)
fn hybrid_laplacian3d_phase0(@builtin(local_invocation_id) lid: vec3<u32>, @builtin(workgroup_id) wid: vec3<u32>) {
  var v0: i32 = 0;
  var v1: i32 = 0;
  var v2: i32 = 0;
  var v3: i32 = 0;
  var v4: i32 = 0;
  var v5: i32 = 0;
  var v6: i32 = 0;
  var v7: i32 = 0;
  var r0: f32 = 0.0;
  var r1: f32 = 0.0;
  var r2: f32 = 0.0;
  var r3: f32 = 0.0;
  var r4: f32 = 0.0;
  var r5: f32 = 0.0;
  var r6: f32 = 0.0;
  var r7: f32 = 0.0;
  v0 = (i32(wid.x) + P.p1);
  v1 = ((P.p0 * 2) + -1);
  v2 = ((v0 * 4) + -2);
  for (v3 = 0; v3 < 5; v3 = v3 + 1) {
    for (v4 = 0; v4 < 2; v4 = v4 + 1) {
      if (v4 == 0) {
        for (v6 = 0; v6 < 14; v6 = v6 + 1) {
          v7 = ((v6 * 16) + (i32(lid.x) + (i32(lid.y) * 8)));
          if ((((v7 < 220 && (0 <= ((v2 + -1) + pmod(floord(v7, 55), 4)) && ((v2 + -1) + pmod(floord(v7, 55), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)) && (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + pmod(v7, 11)) && (((v4 * 8) + -2) + pmod(v7, 11)) <= 11))) {
            r0 = g0[gidx(0, ((v2 + -1) + pmod(floord(v7, 55), 4)), (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)), (((v4 * 8) + -2) + pmod(v7, 11)))];
            s_A[0][pmod(floord(v7, 55), 4)][pmod(floord(v7, 11), 5)][pmod((((v4 * 8) + -2) + pmod(v7, 11)), 11)] = r0;
          }
        }
        for (v6 = 0; v6 < 14; v6 = v6 + 1) {
          v7 = ((v6 * 16) + (i32(lid.x) + (i32(lid.y) * 8)));
          if ((((v7 < 220 && (0 <= ((v2 + -1) + pmod(floord(v7, 55), 4)) && ((v2 + -1) + pmod(floord(v7, 55), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)) && (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + pmod(v7, 11)) && (((v4 * 8) + -2) + pmod(v7, 11)) <= 11))) {
            r0 = g0[gidx(1, ((v2 + -1) + pmod(floord(v7, 55), 4)), (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)), (((v4 * 8) + -2) + pmod(v7, 11)))];
            s_A[1][pmod(floord(v7, 55), 4)][pmod(floord(v7, 11), 5)][pmod((((v4 * 8) + -2) + pmod(v7, 11)), 11)] = r0;
          }
        }
        workgroupBarrier();
      } else {
        for (v6 = 0; v6 < 10; v6 = v6 + 1) {
          v7 = ((v6 * 16) + (i32(lid.x) + (i32(lid.y) * 8)));
          if ((((v7 < 160 && (0 <= ((v2 + -1) + pmod(floord(v7, 40), 4)) && ((v2 + -1) + pmod(floord(v7, 40), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)) && (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + (pmod(v7, 8) + 3)) && (((v4 * 8) + -2) + (pmod(v7, 8) + 3)) <= 11))) {
            r0 = g0[gidx(0, ((v2 + -1) + pmod(floord(v7, 40), 4)), (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)), (((v4 * 8) + -2) + (pmod(v7, 8) + 3)))];
            s_A[0][pmod(floord(v7, 40), 4)][pmod(floord(v7, 8), 5)][pmod((((v4 * 8) + -2) + (pmod(v7, 8) + 3)), 11)] = r0;
          }
        }
        for (v6 = 0; v6 < 10; v6 = v6 + 1) {
          v7 = ((v6 * 16) + (i32(lid.x) + (i32(lid.y) * 8)));
          if ((((v7 < 160 && (0 <= ((v2 + -1) + pmod(floord(v7, 40), 4)) && ((v2 + -1) + pmod(floord(v7, 40), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)) && (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + (pmod(v7, 8) + 3)) && (((v4 * 8) + -2) + (pmod(v7, 8) + 3)) <= 11))) {
            r0 = g0[gidx(1, ((v2 + -1) + pmod(floord(v7, 40), 4)), (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)), (((v4 * 8) + -2) + (pmod(v7, 8) + 3)))];
            s_A[1][pmod(floord(v7, 40), 4)][pmod(floord(v7, 8), 5)][pmod((((v4 * 8) + -2) + (pmod(v7, 8) + 3)), 11)] = r0;
          }
        }
        workgroupBarrier();
      }
      if ((((((((0 <= v1 && (v1 + 1) <= 3) && 1 <= v2) && (v2 + 1) <= 8) && 2 <= (v3 * 2)) && ((v3 * 2) + 1) <= 8) && 2 <= (v4 * 8)) && ((v4 * 8) + 7) <= 10)) {
        r1 = s_A[pmod(v1, 2)][0][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r2 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r3 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 1)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r4 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 3)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r5 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r6 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + 1), 11)];
        r7 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
        s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)] = r0;
        g0[gidx(pmod((v1 + 1), 2), v2, ((v3 * 2) + i32(lid.y)), ((v4 * 8) + i32(lid.x)))] = r0;
        r1 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r2 = s_A[pmod(v1, 2)][3][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r3 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 1)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r4 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 3)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r5 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r6 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + 1), 11)];
        r7 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
        s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)] = r0;
        g0[gidx(pmod((v1 + 1), 2), (v2 + 1), ((v3 * 2) + i32(lid.y)), ((v4 * 8) + i32(lid.x)))] = r0;
        workgroupBarrier();
        r1 = s_A[pmod((v1 + 1), 2)][0][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r2 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r3 = s_A[pmod((v1 + 1), 2)][1][i32(lid.y)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r4 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r5 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -2), 11)];
        r6 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 1)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r7 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
        s_A[pmod((v1 + 2), 2)][1][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)] = r0;
        g0[gidx(pmod((v1 + 2), 2), v2, (((v3 * 2) + i32(lid.y)) + -1), (((v4 * 8) + i32(lid.x)) + -1))] = r0;
        r1 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r2 = s_A[pmod((v1 + 1), 2)][3][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r3 = s_A[pmod((v1 + 1), 2)][2][i32(lid.y)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r4 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r5 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -2), 11)];
        r6 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 1)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r7 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
        s_A[pmod((v1 + 2), 2)][2][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)] = r0;
        g0[gidx(pmod((v1 + 2), 2), (v2 + 1), (((v3 * 2) + i32(lid.y)) + -1), (((v4 * 8) + i32(lid.x)) + -1))] = r0;
        workgroupBarrier();
      } else {
        if (((((0 <= v1 && v1 <= 3) && (1 <= v2 && v2 <= 8)) && (1 <= ((v3 * 2) + i32(lid.y)) && ((v3 * 2) + i32(lid.y)) <= 8)) && (1 <= ((v4 * 8) + i32(lid.x)) && ((v4 * 8) + i32(lid.x)) <= 10))) {
          r1 = s_A[pmod(v1, 2)][0][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r2 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r3 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 1)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r4 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 3)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r5 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r6 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + 1), 11)];
          r7 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
          s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)] = r0;
          g0[gidx(pmod((v1 + 1), 2), v2, ((v3 * 2) + i32(lid.y)), ((v4 * 8) + i32(lid.x)))] = r0;
        }
        if (((((0 <= v1 && v1 <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 8)) && (1 <= ((v3 * 2) + i32(lid.y)) && ((v3 * 2) + i32(lid.y)) <= 8)) && (1 <= ((v4 * 8) + i32(lid.x)) && ((v4 * 8) + i32(lid.x)) <= 10))) {
          r1 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r2 = s_A[pmod(v1, 2)][3][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r3 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 1)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r4 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 3)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r5 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r6 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + 1), 11)];
          r7 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
          s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)] = r0;
          g0[gidx(pmod((v1 + 1), 2), (v2 + 1), ((v3 * 2) + i32(lid.y)), ((v4 * 8) + i32(lid.x)))] = r0;
        }
        workgroupBarrier();
        if (((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= v2 && v2 <= 8)) && (1 <= (((v3 * 2) + i32(lid.y)) + -1) && (((v3 * 2) + i32(lid.y)) + -1) <= 8)) && (1 <= (((v4 * 8) + i32(lid.x)) + -1) && (((v4 * 8) + i32(lid.x)) + -1) <= 10))) {
          r1 = s_A[pmod((v1 + 1), 2)][0][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r2 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r3 = s_A[pmod((v1 + 1), 2)][1][i32(lid.y)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r4 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r5 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -2), 11)];
          r6 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 1)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r7 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
          s_A[pmod((v1 + 2), 2)][1][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)] = r0;
          g0[gidx(pmod((v1 + 2), 2), v2, (((v3 * 2) + i32(lid.y)) + -1), (((v4 * 8) + i32(lid.x)) + -1))] = r0;
        }
        if (((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 8)) && (1 <= (((v3 * 2) + i32(lid.y)) + -1) && (((v3 * 2) + i32(lid.y)) + -1) <= 8)) && (1 <= (((v4 * 8) + i32(lid.x)) + -1) && (((v4 * 8) + i32(lid.x)) + -1) <= 10))) {
          r1 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r2 = s_A[pmod((v1 + 1), 2)][3][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r3 = s_A[pmod((v1 + 1), 2)][2][i32(lid.y)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r4 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r5 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -2), 11)];
          r6 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 1)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r7 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
          s_A[pmod((v1 + 2), 2)][2][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)] = r0;
          g0[gidx(pmod((v1 + 2), 2), (v2 + 1), (((v3 * 2) + i32(lid.y)) + -1), (((v4 * 8) + i32(lid.x)) + -1))] = r0;
        }
        workgroupBarrier();
      }
    }
  }
}

// block 8x2x1, 1760 bytes workgroup memory
@group(0) @binding(0) var<storage, read_write> g0: array<f32>;
struct Params { p0: i32, p1: i32 }
@group(1) @binding(0) var<uniform> P: Params;
var<workgroup> s_A: array<array<array<array<f32, 11>, 5>, 4>, 2>;
override plane_stride: i32 = 1;
override stride0: i32 = 1;
override stride1: i32 = 1;
fn gidx(plane: i32, i0: i32, i1: i32, i2: i32) -> u32 { return u32(plane * plane_stride + i0 * stride0 + i1 * stride1 + i2); }
fn floord(a: i32, b: i32) -> i32 { var q = a / b; if ((a % b != 0) && ((a < 0) != (b < 0))) { q = q - 1; } return q; }
fn pmod(a: i32, b: i32) -> i32 { let r = a % b; if (r < 0) { return r + b; } return r; }
@compute @workgroup_size(8, 2, 1)
fn hybrid_laplacian3d_phase1(@builtin(local_invocation_id) lid: vec3<u32>, @builtin(workgroup_id) wid: vec3<u32>) {
  var v0: i32 = 0;
  var v1: i32 = 0;
  var v2: i32 = 0;
  var v3: i32 = 0;
  var v4: i32 = 0;
  var v5: i32 = 0;
  var v6: i32 = 0;
  var v7: i32 = 0;
  var r0: f32 = 0.0;
  var r1: f32 = 0.0;
  var r2: f32 = 0.0;
  var r3: f32 = 0.0;
  var r4: f32 = 0.0;
  var r5: f32 = 0.0;
  var r6: f32 = 0.0;
  var r7: f32 = 0.0;
  v0 = (i32(wid.x) + P.p1);
  v1 = (P.p0 * 2);
  v2 = (v0 * 4);
  for (v3 = 0; v3 < 5; v3 = v3 + 1) {
    for (v4 = 0; v4 < 2; v4 = v4 + 1) {
      if (v4 == 0) {
        for (v6 = 0; v6 < 14; v6 = v6 + 1) {
          v7 = ((v6 * 16) + (i32(lid.x) + (i32(lid.y) * 8)));
          if ((((v7 < 220 && (0 <= ((v2 + -1) + pmod(floord(v7, 55), 4)) && ((v2 + -1) + pmod(floord(v7, 55), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)) && (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + pmod(v7, 11)) && (((v4 * 8) + -2) + pmod(v7, 11)) <= 11))) {
            r0 = g0[gidx(0, ((v2 + -1) + pmod(floord(v7, 55), 4)), (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)), (((v4 * 8) + -2) + pmod(v7, 11)))];
            s_A[0][pmod(floord(v7, 55), 4)][pmod(floord(v7, 11), 5)][pmod((((v4 * 8) + -2) + pmod(v7, 11)), 11)] = r0;
          }
        }
        for (v6 = 0; v6 < 14; v6 = v6 + 1) {
          v7 = ((v6 * 16) + (i32(lid.x) + (i32(lid.y) * 8)));
          if ((((v7 < 220 && (0 <= ((v2 + -1) + pmod(floord(v7, 55), 4)) && ((v2 + -1) + pmod(floord(v7, 55), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)) && (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + pmod(v7, 11)) && (((v4 * 8) + -2) + pmod(v7, 11)) <= 11))) {
            r0 = g0[gidx(1, ((v2 + -1) + pmod(floord(v7, 55), 4)), (((v3 * 2) + -2) + pmod(floord(v7, 11), 5)), (((v4 * 8) + -2) + pmod(v7, 11)))];
            s_A[1][pmod(floord(v7, 55), 4)][pmod(floord(v7, 11), 5)][pmod((((v4 * 8) + -2) + pmod(v7, 11)), 11)] = r0;
          }
        }
        workgroupBarrier();
      } else {
        for (v6 = 0; v6 < 10; v6 = v6 + 1) {
          v7 = ((v6 * 16) + (i32(lid.x) + (i32(lid.y) * 8)));
          if ((((v7 < 160 && (0 <= ((v2 + -1) + pmod(floord(v7, 40), 4)) && ((v2 + -1) + pmod(floord(v7, 40), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)) && (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + (pmod(v7, 8) + 3)) && (((v4 * 8) + -2) + (pmod(v7, 8) + 3)) <= 11))) {
            r0 = g0[gidx(0, ((v2 + -1) + pmod(floord(v7, 40), 4)), (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)), (((v4 * 8) + -2) + (pmod(v7, 8) + 3)))];
            s_A[0][pmod(floord(v7, 40), 4)][pmod(floord(v7, 8), 5)][pmod((((v4 * 8) + -2) + (pmod(v7, 8) + 3)), 11)] = r0;
          }
        }
        for (v6 = 0; v6 < 10; v6 = v6 + 1) {
          v7 = ((v6 * 16) + (i32(lid.x) + (i32(lid.y) * 8)));
          if ((((v7 < 160 && (0 <= ((v2 + -1) + pmod(floord(v7, 40), 4)) && ((v2 + -1) + pmod(floord(v7, 40), 4)) <= 9)) && (0 <= (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)) && (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)) <= 9)) && (0 <= (((v4 * 8) + -2) + (pmod(v7, 8) + 3)) && (((v4 * 8) + -2) + (pmod(v7, 8) + 3)) <= 11))) {
            r0 = g0[gidx(1, ((v2 + -1) + pmod(floord(v7, 40), 4)), (((v3 * 2) + -2) + pmod(floord(v7, 8), 5)), (((v4 * 8) + -2) + (pmod(v7, 8) + 3)))];
            s_A[1][pmod(floord(v7, 40), 4)][pmod(floord(v7, 8), 5)][pmod((((v4 * 8) + -2) + (pmod(v7, 8) + 3)), 11)] = r0;
          }
        }
        workgroupBarrier();
      }
      if ((((((((0 <= v1 && (v1 + 1) <= 3) && 1 <= v2) && (v2 + 1) <= 8) && 2 <= (v3 * 2)) && ((v3 * 2) + 1) <= 8) && 2 <= (v4 * 8)) && ((v4 * 8) + 7) <= 10)) {
        r1 = s_A[pmod(v1, 2)][0][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r2 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r3 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 1)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r4 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 3)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r5 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r6 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + 1), 11)];
        r7 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
        s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)] = r0;
        g0[gidx(pmod((v1 + 1), 2), v2, ((v3 * 2) + i32(lid.y)), ((v4 * 8) + i32(lid.x)))] = r0;
        r1 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r2 = s_A[pmod(v1, 2)][3][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r3 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 1)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r4 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 3)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r5 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r6 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + 1), 11)];
        r7 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
        s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)] = r0;
        g0[gidx(pmod((v1 + 1), 2), (v2 + 1), ((v3 * 2) + i32(lid.y)), ((v4 * 8) + i32(lid.x)))] = r0;
        workgroupBarrier();
        r1 = s_A[pmod((v1 + 1), 2)][0][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r2 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r3 = s_A[pmod((v1 + 1), 2)][1][i32(lid.y)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r4 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r5 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -2), 11)];
        r6 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 1)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r7 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
        s_A[pmod((v1 + 2), 2)][1][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)] = r0;
        g0[gidx(pmod((v1 + 2), 2), v2, (((v3 * 2) + i32(lid.y)) + -1), (((v4 * 8) + i32(lid.x)) + -1))] = r0;
        r1 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r2 = s_A[pmod((v1 + 1), 2)][3][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r3 = s_A[pmod((v1 + 1), 2)][2][i32(lid.y)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r4 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r5 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -2), 11)];
        r6 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 1)][pmod(((v4 * 8) + i32(lid.x)), 11)];
        r7 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
        r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
        s_A[pmod((v1 + 2), 2)][2][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)] = r0;
        g0[gidx(pmod((v1 + 2), 2), (v2 + 1), (((v3 * 2) + i32(lid.y)) + -1), (((v4 * 8) + i32(lid.x)) + -1))] = r0;
        workgroupBarrier();
      } else {
        if (((((0 <= v1 && v1 <= 3) && (1 <= v2 && v2 <= 8)) && (1 <= ((v3 * 2) + i32(lid.y)) && ((v3 * 2) + i32(lid.y)) <= 8)) && (1 <= ((v4 * 8) + i32(lid.x)) && ((v4 * 8) + i32(lid.x)) <= 10))) {
          r1 = s_A[pmod(v1, 2)][0][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r2 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r3 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 1)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r4 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 3)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r5 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r6 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + 1), 11)];
          r7 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
          s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)] = r0;
          g0[gidx(pmod((v1 + 1), 2), v2, ((v3 * 2) + i32(lid.y)), ((v4 * 8) + i32(lid.x)))] = r0;
        }
        if (((((0 <= v1 && v1 <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 8)) && (1 <= ((v3 * 2) + i32(lid.y)) && ((v3 * 2) + i32(lid.y)) <= 8)) && (1 <= ((v4 * 8) + i32(lid.x)) && ((v4 * 8) + i32(lid.x)) <= 10))) {
          r1 = s_A[pmod(v1, 2)][1][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r2 = s_A[pmod(v1, 2)][3][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r3 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 1)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r4 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 3)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r5 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r6 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + 1), 11)];
          r7 = s_A[pmod(v1, 2)][2][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
          s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 2)][pmod(((v4 * 8) + i32(lid.x)), 11)] = r0;
          g0[gidx(pmod((v1 + 1), 2), (v2 + 1), ((v3 * 2) + i32(lid.y)), ((v4 * 8) + i32(lid.x)))] = r0;
        }
        workgroupBarrier();
        if (((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= v2 && v2 <= 8)) && (1 <= (((v3 * 2) + i32(lid.y)) + -1) && (((v3 * 2) + i32(lid.y)) + -1) <= 8)) && (1 <= (((v4 * 8) + i32(lid.x)) + -1) && (((v4 * 8) + i32(lid.x)) + -1) <= 10))) {
          r1 = s_A[pmod((v1 + 1), 2)][0][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r2 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r3 = s_A[pmod((v1 + 1), 2)][1][i32(lid.y)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r4 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r5 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -2), 11)];
          r6 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 1)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r7 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
          s_A[pmod((v1 + 2), 2)][1][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)] = r0;
          g0[gidx(pmod((v1 + 2), 2), v2, (((v3 * 2) + i32(lid.y)) + -1), (((v4 * 8) + i32(lid.x)) + -1))] = r0;
        }
        if (((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 8)) && (1 <= (((v3 * 2) + i32(lid.y)) + -1) && (((v3 * 2) + i32(lid.y)) + -1) <= 8)) && (1 <= (((v4 * 8) + i32(lid.x)) + -1) && (((v4 * 8) + i32(lid.x)) + -1) <= 10))) {
          r1 = s_A[pmod((v1 + 1), 2)][1][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r2 = s_A[pmod((v1 + 1), 2)][3][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r3 = s_A[pmod((v1 + 1), 2)][2][i32(lid.y)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r4 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 2)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r5 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -2), 11)];
          r6 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 1)][pmod(((v4 * 8) + i32(lid.x)), 11)];
          r7 = s_A[pmod((v1 + 1), 2)][2][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)];
          r0 = (0.125f * ((((((r1 + r2) + r3) + r4) + r5) + r6) + (-6.0f * r7)));
          s_A[pmod((v1 + 2), 2)][2][(i32(lid.y) + 1)][pmod((((v4 * 8) + i32(lid.x)) + -1), 11)] = r0;
          g0[gidx(pmod((v1 + 2), 2), (v2 + 1), (((v3 * 2) + i32(lid.y)) + -1), (((v4 * 8) + i32(lid.x)) + -1))] = r0;
        }
        workgroupBarrier();
      }
    }
  }
}

