// Vectorized whole-block CPU lowering: one function per kernel, one
// `lane` loop iteration per GPU thread. Statement-level lockstep makes
// every former __syncthreads() barrier-synchronous by construction.
#include <math.h>

static inline int floord(int a, int b) {
  int q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}
static inline int pmod(int a, int b) { int r = a % b; return r < 0 ? r + b : r; }
static inline int min(int a, int b) { return a < b ? a : b; }
static inline int max(int a, int b) { return a > b ? a : b; }

// block 8x1x1 = 8 lanes, 624 bytes block-local
static void hybrid_jacobi2d_phase0(float *g0, long plane_stride, long stride0, int p0, int p1, int blockIdx) {
  float s_A[2][6][13];
  int v0 = 0;
  int v1 = 0;
  int v2 = 0;
  int v3 = 0;
  int v4 = 0;
  int v5 = 0;
  int v6[8];
  float r0[8];
  float r1[8];
  float r2[8];
  float r3[8];
  float r4[8];
  float r5[8];
  int m0[8];
  v0 = (blockIdx + p1);
  v1 = ((p0 * 4) + -2);
  v2 = ((v0 * 6) + -3);
  for (v3 = 0; v3 < 3; v3 += 1) {
    if (v3 == 0) {
      for (v5 = 0; v5 < 10; v5 += 1) {
        for (int lane = 0; lane < 8; ++lane) {
          v6[lane] = ((v5 * 8) + ((lane % 8) + (((lane / 8) % 1) * 8)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          m0[lane] = (((v6[lane] < 78 && (0 <= ((v2 + -1) + pmod(floord(v6[lane], 13), 6)) && ((v2 + -1) + pmod(floord(v6[lane], 13), 6)) <= 19)) && (0 <= (((v3 * 8) + -4) + pmod(v6[lane], 13)) && (((v3 * 8) + -4) + pmod(v6[lane], 13)) <= 19)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = g0[0 * plane_stride + ((v2 + -1) + pmod(floord(v6[lane], 13), 6)) * stride0 + (((v3 * 8) + -4) + pmod(v6[lane], 13))];
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          s_A[0][pmod(floord(v6[lane], 13), 6)][pmod(v6[lane], 13)] = r0[lane];
        }
      }
      for (v5 = 0; v5 < 10; v5 += 1) {
        for (int lane = 0; lane < 8; ++lane) {
          v6[lane] = ((v5 * 8) + ((lane % 8) + (((lane / 8) % 1) * 8)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          m0[lane] = (((v6[lane] < 78 && (0 <= ((v2 + -1) + pmod(floord(v6[lane], 13), 6)) && ((v2 + -1) + pmod(floord(v6[lane], 13), 6)) <= 19)) && (0 <= (((v3 * 8) + -4) + pmod(v6[lane], 13)) && (((v3 * 8) + -4) + pmod(v6[lane], 13)) <= 19)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = g0[1 * plane_stride + ((v2 + -1) + pmod(floord(v6[lane], 13), 6)) * stride0 + (((v3 * 8) + -4) + pmod(v6[lane], 13))];
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          s_A[1][pmod(floord(v6[lane], 13), 6)][pmod(v6[lane], 13)] = r0[lane];
        }
      }
      /* __syncthreads(): lane loops run in statement lockstep */
    } else {
      for (v5 = 0; v5 < 4; v5 += 1) {
        for (int lane = 0; lane < 8; ++lane) {
          v6[lane] = ((v5 * 8) + ((lane % 8) + (((lane / 8) % 1) * 8)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          m0[lane] = (v6[lane] < 30);
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = s_A[0][pmod(floord(v6[lane], 5), 6)][(pmod(v6[lane], 5) + 8)];
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          s_A[0][pmod(floord(v6[lane], 5), 6)][pmod(v6[lane], 5)] = r0[lane];
        }
      }
      for (v5 = 0; v5 < 4; v5 += 1) {
        for (int lane = 0; lane < 8; ++lane) {
          v6[lane] = ((v5 * 8) + ((lane % 8) + (((lane / 8) % 1) * 8)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          m0[lane] = (v6[lane] < 30);
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = s_A[1][pmod(floord(v6[lane], 5), 6)][(pmod(v6[lane], 5) + 8)];
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          s_A[1][pmod(floord(v6[lane], 5), 6)][pmod(v6[lane], 5)] = r0[lane];
        }
      }
      /* __syncthreads(): lane loops run in statement lockstep */
      for (v5 = 0; v5 < 6; v5 += 1) {
        for (int lane = 0; lane < 8; ++lane) {
          v6[lane] = ((v5 * 8) + ((lane % 8) + (((lane / 8) % 1) * 8)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          m0[lane] = (((v6[lane] < 48 && (0 <= ((v2 + -1) + pmod(floord(v6[lane], 8), 6)) && ((v2 + -1) + pmod(floord(v6[lane], 8), 6)) <= 19)) && (0 <= (((v3 * 8) + -4) + (pmod(v6[lane], 8) + 5)) && (((v3 * 8) + -4) + (pmod(v6[lane], 8) + 5)) <= 19)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = g0[0 * plane_stride + ((v2 + -1) + pmod(floord(v6[lane], 8), 6)) * stride0 + (((v3 * 8) + -4) + (pmod(v6[lane], 8) + 5))];
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          s_A[0][pmod(floord(v6[lane], 8), 6)][(pmod(v6[lane], 8) + 5)] = r0[lane];
        }
      }
      for (v5 = 0; v5 < 6; v5 += 1) {
        for (int lane = 0; lane < 8; ++lane) {
          v6[lane] = ((v5 * 8) + ((lane % 8) + (((lane / 8) % 1) * 8)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          m0[lane] = (((v6[lane] < 48 && (0 <= ((v2 + -1) + pmod(floord(v6[lane], 8), 6)) && ((v2 + -1) + pmod(floord(v6[lane], 8), 6)) <= 19)) && (0 <= (((v3 * 8) + -4) + (pmod(v6[lane], 8) + 5)) && (((v3 * 8) + -4) + (pmod(v6[lane], 8) + 5)) <= 19)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = g0[1 * plane_stride + ((v2 + -1) + pmod(floord(v6[lane], 8), 6)) * stride0 + (((v3 * 8) + -4) + (pmod(v6[lane], 8) + 5))];
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          s_A[1][pmod(floord(v6[lane], 8), 6)][(pmod(v6[lane], 8) + 5)] = r0[lane];
        }
      }
      /* __syncthreads(): lane loops run in statement lockstep */
    }
    if ((((((0 <= v1 && (v1 + 3) <= 3) && 1 <= v2) && (v2 + 3) <= 18) && 4 <= (v3 * 8)) && ((v3 * 8) + 7) <= 18)) {
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod(v1, 2)][2][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod(v1, 2)][3][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod(v1, 2)][1][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod(v1, 2)][2][((lane % 8) + 5)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod(v1, 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 4)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 1), 2) * plane_stride + (v2 + 1) * stride0 + ((v3 * 8) + (lane % 8))] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod(v1, 2)][3][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod(v1, 2)][4][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod(v1, 2)][2][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod(v1, 2)][3][((lane % 8) + 5)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod(v1, 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 4)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 1), 2) * plane_stride + (v2 + 2) * stride0 + ((v3 * 8) + (lane % 8))] = r0[lane];
      }
      /* __syncthreads(): lane loops run in statement lockstep */
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 1), 2)][1][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 1), 2)][0][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 1), 2)][1][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 1), 2)][1][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 2), 2) * plane_stride + v2 * stride0 + (((v3 * 8) + (lane % 8)) + -1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 1), 2)][1][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 2), 2) * plane_stride + (v2 + 1) * stride0 + (((v3 * 8) + (lane % 8)) + -1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 1), 2)][4][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 2), 2) * plane_stride + (v2 + 2) * stride0 + (((v3 * 8) + (lane % 8)) + -1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 1), 2)][4][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 1), 2)][5][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 1), 2)][4][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 1), 2)][4][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 2), 2) * plane_stride + (v2 + 3) * stride0 + (((v3 * 8) + (lane % 8)) + -1)] = r0[lane];
      }
      /* __syncthreads(): lane loops run in statement lockstep */
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 2), 2)][0][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 3), 2)][1][((lane % 8) + 2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 3), 2) * plane_stride + v2 * stride0 + (((v3 * 8) + (lane % 8)) + -2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 3), 2)][2][((lane % 8) + 2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 3), 2) * plane_stride + (v2 + 1) * stride0 + (((v3 * 8) + (lane % 8)) + -2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 3), 2)][3][((lane % 8) + 2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 3), 2) * plane_stride + (v2 + 2) * stride0 + (((v3 * 8) + (lane % 8)) + -2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 2), 2)][5][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 3), 2)][4][((lane % 8) + 2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 3), 2) * plane_stride + (v2 + 3) * stride0 + (((v3 * 8) + (lane % 8)) + -2)] = r0[lane];
      }
      /* __syncthreads(): lane loops run in statement lockstep */
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 3), 2)][2][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 3), 2)][3][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 3), 2)][1][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 3), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 3), 2)][2][(lane % 8)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 4), 2)][2][((lane % 8) + 1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 4), 2) * plane_stride + (v2 + 1) * stride0 + (((v3 * 8) + (lane % 8)) + -3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 3), 2)][3][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 3), 2)][4][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 3), 2)][2][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 3), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 3), 2)][3][(lane % 8)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 4), 2)][3][((lane % 8) + 1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 4), 2) * plane_stride + (v2 + 2) * stride0 + (((v3 * 8) + (lane % 8)) + -3)] = r0[lane];
      }
      /* __syncthreads(): lane loops run in statement lockstep */
    } else {
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= v1 && v1 <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= ((v3 * 8) + (lane % 8)) && ((v3 * 8) + (lane % 8)) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod(v1, 2)][2][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod(v1, 2)][3][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod(v1, 2)][1][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod(v1, 2)][2][((lane % 8) + 5)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod(v1, 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 4)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 1), 2) * plane_stride + (v2 + 1) * stride0 + ((v3 * 8) + (lane % 8))] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= v1 && v1 <= 3) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= ((v3 * 8) + (lane % 8)) && ((v3 * 8) + (lane % 8)) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod(v1, 2)][3][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod(v1, 2)][4][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod(v1, 2)][2][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod(v1, 2)][3][((lane % 8) + 5)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod(v1, 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 4)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 1), 2) * plane_stride + (v2 + 2) * stride0 + ((v3 * 8) + (lane % 8))] = r0[lane];
      }
      /* __syncthreads(): lane loops run in statement lockstep */
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -1) && (((v3 * 8) + (lane % 8)) + -1) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 1), 2)][1][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 1), 2)][0][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 1), 2)][1][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 1), 2)][1][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 2), 2) * plane_stride + v2 * stride0 + (((v3 * 8) + (lane % 8)) + -1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -1) && (((v3 * 8) + (lane % 8)) + -1) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 1), 2)][1][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 2), 2) * plane_stride + (v2 + 1) * stride0 + (((v3 * 8) + (lane % 8)) + -1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -1) && (((v3 * 8) + (lane % 8)) + -1) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 1), 2)][4][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 2), 2) * plane_stride + (v2 + 2) * stride0 + (((v3 * 8) + (lane % 8)) + -1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -1) && (((v3 * 8) + (lane % 8)) + -1) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 1), 2)][4][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 1), 2)][5][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 1), 2)][4][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 1), 2)][4][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 2), 2) * plane_stride + (v2 + 3) * stride0 + (((v3 * 8) + (lane % 8)) + -1)] = r0[lane];
      }
      /* __syncthreads(): lane loops run in statement lockstep */
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 2) && (v1 + 2) <= 3) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -2) && (((v3 * 8) + (lane % 8)) + -2) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 2), 2)][0][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 3), 2)][1][((lane % 8) + 2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 3), 2) * plane_stride + v2 * stride0 + (((v3 * 8) + (lane % 8)) + -2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 2) && (v1 + 2) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -2) && (((v3 * 8) + (lane % 8)) + -2) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 3), 2)][2][((lane % 8) + 2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 3), 2) * plane_stride + (v2 + 1) * stride0 + (((v3 * 8) + (lane % 8)) + -2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 2) && (v1 + 2) <= 3) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -2) && (((v3 * 8) + (lane % 8)) + -2) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 3), 2)][3][((lane % 8) + 2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 3), 2) * plane_stride + (v2 + 2) * stride0 + (((v3 * 8) + (lane % 8)) + -2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 2) && (v1 + 2) <= 3) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -2) && (((v3 * 8) + (lane % 8)) + -2) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 2), 2)][5][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 3), 2)][4][((lane % 8) + 2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 3), 2) * plane_stride + (v2 + 3) * stride0 + (((v3 * 8) + (lane % 8)) + -2)] = r0[lane];
      }
      /* __syncthreads(): lane loops run in statement lockstep */
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 3) && (v1 + 3) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -3) && (((v3 * 8) + (lane % 8)) + -3) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 3), 2)][2][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 3), 2)][3][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 3), 2)][1][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 3), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 3), 2)][2][(lane % 8)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 4), 2)][2][((lane % 8) + 1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 4), 2) * plane_stride + (v2 + 1) * stride0 + (((v3 * 8) + (lane % 8)) + -3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 3) && (v1 + 3) <= 3) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -3) && (((v3 * 8) + (lane % 8)) + -3) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 3), 2)][3][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 3), 2)][4][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 3), 2)][2][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 3), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 3), 2)][3][(lane % 8)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 4), 2)][3][((lane % 8) + 1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 4), 2) * plane_stride + (v2 + 2) * stride0 + (((v3 * 8) + (lane % 8)) + -3)] = r0[lane];
      }
      /* __syncthreads(): lane loops run in statement lockstep */
    }
  }
}

// block 8x1x1 = 8 lanes, 624 bytes block-local
static void hybrid_jacobi2d_phase1(float *g0, long plane_stride, long stride0, int p0, int p1, int blockIdx) {
  float s_A[2][6][13];
  int v0 = 0;
  int v1 = 0;
  int v2 = 0;
  int v3 = 0;
  int v4 = 0;
  int v5 = 0;
  int v6[8];
  float r0[8];
  float r1[8];
  float r2[8];
  float r3[8];
  float r4[8];
  float r5[8];
  int m0[8];
  v0 = (blockIdx + p1);
  v1 = (p0 * 4);
  v2 = (v0 * 6);
  for (v3 = 0; v3 < 3; v3 += 1) {
    if (v3 == 0) {
      for (v5 = 0; v5 < 10; v5 += 1) {
        for (int lane = 0; lane < 8; ++lane) {
          v6[lane] = ((v5 * 8) + ((lane % 8) + (((lane / 8) % 1) * 8)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          m0[lane] = (((v6[lane] < 78 && (0 <= ((v2 + -1) + pmod(floord(v6[lane], 13), 6)) && ((v2 + -1) + pmod(floord(v6[lane], 13), 6)) <= 19)) && (0 <= (((v3 * 8) + -4) + pmod(v6[lane], 13)) && (((v3 * 8) + -4) + pmod(v6[lane], 13)) <= 19)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = g0[0 * plane_stride + ((v2 + -1) + pmod(floord(v6[lane], 13), 6)) * stride0 + (((v3 * 8) + -4) + pmod(v6[lane], 13))];
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          s_A[0][pmod(floord(v6[lane], 13), 6)][pmod(v6[lane], 13)] = r0[lane];
        }
      }
      for (v5 = 0; v5 < 10; v5 += 1) {
        for (int lane = 0; lane < 8; ++lane) {
          v6[lane] = ((v5 * 8) + ((lane % 8) + (((lane / 8) % 1) * 8)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          m0[lane] = (((v6[lane] < 78 && (0 <= ((v2 + -1) + pmod(floord(v6[lane], 13), 6)) && ((v2 + -1) + pmod(floord(v6[lane], 13), 6)) <= 19)) && (0 <= (((v3 * 8) + -4) + pmod(v6[lane], 13)) && (((v3 * 8) + -4) + pmod(v6[lane], 13)) <= 19)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = g0[1 * plane_stride + ((v2 + -1) + pmod(floord(v6[lane], 13), 6)) * stride0 + (((v3 * 8) + -4) + pmod(v6[lane], 13))];
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          s_A[1][pmod(floord(v6[lane], 13), 6)][pmod(v6[lane], 13)] = r0[lane];
        }
      }
      /* __syncthreads(): lane loops run in statement lockstep */
    } else {
      for (v5 = 0; v5 < 4; v5 += 1) {
        for (int lane = 0; lane < 8; ++lane) {
          v6[lane] = ((v5 * 8) + ((lane % 8) + (((lane / 8) % 1) * 8)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          m0[lane] = (v6[lane] < 30);
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = s_A[0][pmod(floord(v6[lane], 5), 6)][(pmod(v6[lane], 5) + 8)];
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          s_A[0][pmod(floord(v6[lane], 5), 6)][pmod(v6[lane], 5)] = r0[lane];
        }
      }
      for (v5 = 0; v5 < 4; v5 += 1) {
        for (int lane = 0; lane < 8; ++lane) {
          v6[lane] = ((v5 * 8) + ((lane % 8) + (((lane / 8) % 1) * 8)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          m0[lane] = (v6[lane] < 30);
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = s_A[1][pmod(floord(v6[lane], 5), 6)][(pmod(v6[lane], 5) + 8)];
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          s_A[1][pmod(floord(v6[lane], 5), 6)][pmod(v6[lane], 5)] = r0[lane];
        }
      }
      /* __syncthreads(): lane loops run in statement lockstep */
      for (v5 = 0; v5 < 6; v5 += 1) {
        for (int lane = 0; lane < 8; ++lane) {
          v6[lane] = ((v5 * 8) + ((lane % 8) + (((lane / 8) % 1) * 8)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          m0[lane] = (((v6[lane] < 48 && (0 <= ((v2 + -1) + pmod(floord(v6[lane], 8), 6)) && ((v2 + -1) + pmod(floord(v6[lane], 8), 6)) <= 19)) && (0 <= (((v3 * 8) + -4) + (pmod(v6[lane], 8) + 5)) && (((v3 * 8) + -4) + (pmod(v6[lane], 8) + 5)) <= 19)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = g0[0 * plane_stride + ((v2 + -1) + pmod(floord(v6[lane], 8), 6)) * stride0 + (((v3 * 8) + -4) + (pmod(v6[lane], 8) + 5))];
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          s_A[0][pmod(floord(v6[lane], 8), 6)][(pmod(v6[lane], 8) + 5)] = r0[lane];
        }
      }
      for (v5 = 0; v5 < 6; v5 += 1) {
        for (int lane = 0; lane < 8; ++lane) {
          v6[lane] = ((v5 * 8) + ((lane % 8) + (((lane / 8) % 1) * 8)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          m0[lane] = (((v6[lane] < 48 && (0 <= ((v2 + -1) + pmod(floord(v6[lane], 8), 6)) && ((v2 + -1) + pmod(floord(v6[lane], 8), 6)) <= 19)) && (0 <= (((v3 * 8) + -4) + (pmod(v6[lane], 8) + 5)) && (((v3 * 8) + -4) + (pmod(v6[lane], 8) + 5)) <= 19)));
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          r0[lane] = g0[1 * plane_stride + ((v2 + -1) + pmod(floord(v6[lane], 8), 6)) * stride0 + (((v3 * 8) + -4) + (pmod(v6[lane], 8) + 5))];
        }
        for (int lane = 0; lane < 8; ++lane) {
          if (!m0[lane]) continue;
          s_A[1][pmod(floord(v6[lane], 8), 6)][(pmod(v6[lane], 8) + 5)] = r0[lane];
        }
      }
      /* __syncthreads(): lane loops run in statement lockstep */
    }
    if ((((((0 <= v1 && (v1 + 3) <= 3) && 1 <= v2) && (v2 + 3) <= 18) && 4 <= (v3 * 8)) && ((v3 * 8) + 7) <= 18)) {
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod(v1, 2)][2][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod(v1, 2)][3][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod(v1, 2)][1][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod(v1, 2)][2][((lane % 8) + 5)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod(v1, 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 4)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 1), 2) * plane_stride + (v2 + 1) * stride0 + ((v3 * 8) + (lane % 8))] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod(v1, 2)][3][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod(v1, 2)][4][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod(v1, 2)][2][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod(v1, 2)][3][((lane % 8) + 5)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod(v1, 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 4)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 1), 2) * plane_stride + (v2 + 2) * stride0 + ((v3 * 8) + (lane % 8))] = r0[lane];
      }
      /* __syncthreads(): lane loops run in statement lockstep */
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 1), 2)][1][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 1), 2)][0][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 1), 2)][1][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 1), 2)][1][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 2), 2) * plane_stride + v2 * stride0 + (((v3 * 8) + (lane % 8)) + -1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 1), 2)][1][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 2), 2) * plane_stride + (v2 + 1) * stride0 + (((v3 * 8) + (lane % 8)) + -1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 1), 2)][4][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 2), 2) * plane_stride + (v2 + 2) * stride0 + (((v3 * 8) + (lane % 8)) + -1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 1), 2)][4][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 1), 2)][5][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 1), 2)][4][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 1), 2)][4][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 2), 2) * plane_stride + (v2 + 3) * stride0 + (((v3 * 8) + (lane % 8)) + -1)] = r0[lane];
      }
      /* __syncthreads(): lane loops run in statement lockstep */
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 2), 2)][0][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 3), 2)][1][((lane % 8) + 2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 3), 2) * plane_stride + v2 * stride0 + (((v3 * 8) + (lane % 8)) + -2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 3), 2)][2][((lane % 8) + 2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 3), 2) * plane_stride + (v2 + 1) * stride0 + (((v3 * 8) + (lane % 8)) + -2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 3), 2)][3][((lane % 8) + 2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 3), 2) * plane_stride + (v2 + 2) * stride0 + (((v3 * 8) + (lane % 8)) + -2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 2), 2)][5][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 3), 2)][4][((lane % 8) + 2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 3), 2) * plane_stride + (v2 + 3) * stride0 + (((v3 * 8) + (lane % 8)) + -2)] = r0[lane];
      }
      /* __syncthreads(): lane loops run in statement lockstep */
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 3), 2)][2][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 3), 2)][3][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 3), 2)][1][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 3), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 3), 2)][2][(lane % 8)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 4), 2)][2][((lane % 8) + 1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 4), 2) * plane_stride + (v2 + 1) * stride0 + (((v3 * 8) + (lane % 8)) + -3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r1[lane] = s_A[pmod((v1 + 3), 2)][3][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r2[lane] = s_A[pmod((v1 + 3), 2)][4][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r3[lane] = s_A[pmod((v1 + 3), 2)][2][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r4[lane] = s_A[pmod((v1 + 3), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r5[lane] = s_A[pmod((v1 + 3), 2)][3][(lane % 8)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        s_A[pmod((v1 + 4), 2)][3][((lane % 8) + 1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        g0[pmod((v1 + 4), 2) * plane_stride + (v2 + 2) * stride0 + (((v3 * 8) + (lane % 8)) + -3)] = r0[lane];
      }
      /* __syncthreads(): lane loops run in statement lockstep */
    } else {
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= v1 && v1 <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= ((v3 * 8) + (lane % 8)) && ((v3 * 8) + (lane % 8)) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod(v1, 2)][2][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod(v1, 2)][3][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod(v1, 2)][1][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod(v1, 2)][2][((lane % 8) + 5)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod(v1, 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 4)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 1), 2) * plane_stride + (v2 + 1) * stride0 + ((v3 * 8) + (lane % 8))] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= v1 && v1 <= 3) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= ((v3 * 8) + (lane % 8)) && ((v3 * 8) + (lane % 8)) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod(v1, 2)][3][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod(v1, 2)][4][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod(v1, 2)][2][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod(v1, 2)][3][((lane % 8) + 5)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod(v1, 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 4)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 1), 2) * plane_stride + (v2 + 2) * stride0 + ((v3 * 8) + (lane % 8))] = r0[lane];
      }
      /* __syncthreads(): lane loops run in statement lockstep */
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -1) && (((v3 * 8) + (lane % 8)) + -1) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 1), 2)][1][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 1), 2)][0][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 1), 2)][1][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 1), 2)][1][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 2), 2) * plane_stride + v2 * stride0 + (((v3 * 8) + (lane % 8)) + -1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -1) && (((v3 * 8) + (lane % 8)) + -1) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 1), 2)][1][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 2), 2) * plane_stride + (v2 + 1) * stride0 + (((v3 * 8) + (lane % 8)) + -1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -1) && (((v3 * 8) + (lane % 8)) + -1) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 1), 2)][4][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 1), 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 2), 2) * plane_stride + (v2 + 2) * stride0 + (((v3 * 8) + (lane % 8)) + -1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 1) && (v1 + 1) <= 3) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -1) && (((v3 * 8) + (lane % 8)) + -1) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 1), 2)][4][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 1), 2)][5][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 1), 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 1), 2)][4][((lane % 8) + 4)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 1), 2)][4][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 2), 2) * plane_stride + (v2 + 3) * stride0 + (((v3 * 8) + (lane % 8)) + -1)] = r0[lane];
      }
      /* __syncthreads(): lane loops run in statement lockstep */
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 2) && (v1 + 2) <= 3) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -2) && (((v3 * 8) + (lane % 8)) + -2) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 2), 2)][0][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 3), 2)][1][((lane % 8) + 2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 3), 2) * plane_stride + v2 * stride0 + (((v3 * 8) + (lane % 8)) + -2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 2) && (v1 + 2) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -2) && (((v3 * 8) + (lane % 8)) + -2) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 2), 2)][1][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 3), 2)][2][((lane % 8) + 2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 3), 2) * plane_stride + (v2 + 1) * stride0 + (((v3 * 8) + (lane % 8)) + -2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 2) && (v1 + 2) <= 3) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -2) && (((v3 * 8) + (lane % 8)) + -2) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 2), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 3), 2)][3][((lane % 8) + 2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 3), 2) * plane_stride + (v2 + 2) * stride0 + (((v3 * 8) + (lane % 8)) + -2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 2) && (v1 + 2) <= 3) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -2) && (((v3 * 8) + (lane % 8)) + -2) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 2), 2)][5][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 2), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 3)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 2), 2)][4][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 3), 2)][4][((lane % 8) + 2)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 3), 2) * plane_stride + (v2 + 3) * stride0 + (((v3 * 8) + (lane % 8)) + -2)] = r0[lane];
      }
      /* __syncthreads(): lane loops run in statement lockstep */
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 3) && (v1 + 3) <= 3) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -3) && (((v3 * 8) + (lane % 8)) + -3) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 3), 2)][2][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 3), 2)][3][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 3), 2)][1][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 3), 2)][2][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 3), 2)][2][(lane % 8)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 4), 2)][2][((lane % 8) + 1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 4), 2) * plane_stride + (v2 + 1) * stride0 + (((v3 * 8) + (lane % 8)) + -3)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        m0[lane] = ((((0 <= (v1 + 3) && (v1 + 3) <= 3) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + (lane % 8)) + -3) && (((v3 * 8) + (lane % 8)) + -3) <= 18)));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r1[lane] = s_A[pmod((v1 + 3), 2)][3][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r2[lane] = s_A[pmod((v1 + 3), 2)][4][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r3[lane] = s_A[pmod((v1 + 3), 2)][2][((lane % 8) + 1)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r4[lane] = s_A[pmod((v1 + 3), 2)][3][((lane % 8) + 2)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r5[lane] = s_A[pmod((v1 + 3), 2)][3][(lane % 8)];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        r0[lane] = (0.2f * ((((r1[lane] + r2[lane]) + r3[lane]) + r4[lane]) + r5[lane]));
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        s_A[pmod((v1 + 4), 2)][3][((lane % 8) + 1)] = r0[lane];
      }
      for (int lane = 0; lane < 8; ++lane) {
        if (!m0[lane]) continue;
        g0[pmod((v1 + 4), 2) * plane_stride + (v2 + 2) * stride0 + (((v3 * 8) + (lane % 8)) + -3)] = r0[lane];
      }
      /* __syncthreads(): lane loops run in statement lockstep */
    }
  }
}

