// block 8x1x1, 2520 bytes workgroup memory
@group(0) @binding(0) var<storage, read_write> g0: array<f32>;
@group(0) @binding(1) var<storage, read_write> g1: array<f32>;
@group(0) @binding(2) var<storage, read_write> g2: array<f32>;
struct Params { p0: i32, p1: i32 }
@group(1) @binding(0) var<uniform> P: Params;
var<workgroup> s_ey: array<array<array<f32, 15>, 7>, 2>;
var<workgroup> s_ex: array<array<array<f32, 15>, 7>, 2>;
var<workgroup> s_hz: array<array<array<f32, 15>, 7>, 2>;
override plane_stride: i32 = 1;
override stride0: i32 = 1;
fn gidx(plane: i32, i0: i32, i1: i32) -> u32 { return u32(plane * plane_stride + i0 * stride0 + i1); }
fn floord(a: i32, b: i32) -> i32 { var q = a / b; if ((a % b != 0) && ((a < 0) != (b < 0))) { q = q - 1; } return q; }
fn pmod(a: i32, b: i32) -> i32 { let r = a % b; if (r < 0) { return r + b; } return r; }
@compute @workgroup_size(8, 1, 1)
fn hybrid_fdtd2d_phase0(@builtin(local_invocation_id) lid: vec3<u32>, @builtin(workgroup_id) wid: vec3<u32>) {
  var v0: i32 = 0;
  var v1: i32 = 0;
  var v2: i32 = 0;
  var v3: i32 = 0;
  var v4: i32 = 0;
  var v5: i32 = 0;
  var v6: i32 = 0;
  var r0: f32 = 0.0;
  var r1: f32 = 0.0;
  var r2: f32 = 0.0;
  var r3: f32 = 0.0;
  var r4: f32 = 0.0;
  var r5: f32 = 0.0;
  v0 = (i32(wid.x) + P.p1);
  v1 = ((P.p0 * 6) + -3);
  v2 = (((v0 * 7) - (P.p0 * -1)) + -4);
  for (v3 = 0; v3 < 3; v3 = v3 + 1) {
    if (v3 == 0) {
      for (v5 = 0; v5 < 14; v5 = v5 + 1) {
        v6 = ((v5 * 8) + (i32(lid.x) + (i32(lid.y) * 8)));
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g0[gidx(0, ((v2 + -1) + pmod(floord(v6, 15), 7)), (((v3 * 8) + -6) + pmod(v6, 15)))];
          s_ey[0][pmod(floord(v6, 15), 7)][pmod((((v3 * 8) + -6) + pmod(v6, 15)), 15)] = r0;
        }
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g1[gidx(0, ((v2 + -1) + pmod(floord(v6, 15), 7)), (((v3 * 8) + -6) + pmod(v6, 15)))];
          s_ex[0][pmod(floord(v6, 15), 7)][pmod((((v3 * 8) + -6) + pmod(v6, 15)), 15)] = r0;
        }
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g2[gidx(0, ((v2 + -1) + pmod(floord(v6, 15), 7)), (((v3 * 8) + -6) + pmod(v6, 15)))];
          s_hz[0][pmod(floord(v6, 15), 7)][pmod((((v3 * 8) + -6) + pmod(v6, 15)), 15)] = r0;
        }
      }
      for (v5 = 0; v5 < 14; v5 = v5 + 1) {
        v6 = ((v5 * 8) + (i32(lid.x) + (i32(lid.y) * 8)));
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g0[gidx(1, ((v2 + -1) + pmod(floord(v6, 15), 7)), (((v3 * 8) + -6) + pmod(v6, 15)))];
          s_ey[1][pmod(floord(v6, 15), 7)][pmod((((v3 * 8) + -6) + pmod(v6, 15)), 15)] = r0;
        }
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g1[gidx(1, ((v2 + -1) + pmod(floord(v6, 15), 7)), (((v3 * 8) + -6) + pmod(v6, 15)))];
          s_ex[1][pmod(floord(v6, 15), 7)][pmod((((v3 * 8) + -6) + pmod(v6, 15)), 15)] = r0;
        }
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g2[gidx(1, ((v2 + -1) + pmod(floord(v6, 15), 7)), (((v3 * 8) + -6) + pmod(v6, 15)))];
          s_hz[1][pmod(floord(v6, 15), 7)][pmod((((v3 * 8) + -6) + pmod(v6, 15)), 15)] = r0;
        }
      }
      workgroupBarrier();
    } else {
      for (v5 = 0; v5 < 7; v5 = v5 + 1) {
        v6 = ((v5 * 8) + (i32(lid.x) + (i32(lid.y) * 8)));
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g0[gidx(0, ((v2 + -1) + pmod(floord(v6, 8), 7)), (((v3 * 8) + -6) + (pmod(v6, 8) + 7)))];
          s_ey[0][pmod(floord(v6, 8), 7)][pmod((((v3 * 8) + -6) + (pmod(v6, 8) + 7)), 15)] = r0;
        }
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g1[gidx(0, ((v2 + -1) + pmod(floord(v6, 8), 7)), (((v3 * 8) + -6) + (pmod(v6, 8) + 7)))];
          s_ex[0][pmod(floord(v6, 8), 7)][pmod((((v3 * 8) + -6) + (pmod(v6, 8) + 7)), 15)] = r0;
        }
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g2[gidx(0, ((v2 + -1) + pmod(floord(v6, 8), 7)), (((v3 * 8) + -6) + (pmod(v6, 8) + 7)))];
          s_hz[0][pmod(floord(v6, 8), 7)][pmod((((v3 * 8) + -6) + (pmod(v6, 8) + 7)), 15)] = r0;
        }
      }
      for (v5 = 0; v5 < 7; v5 = v5 + 1) {
        v6 = ((v5 * 8) + (i32(lid.x) + (i32(lid.y) * 8)));
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g0[gidx(1, ((v2 + -1) + pmod(floord(v6, 8), 7)), (((v3 * 8) + -6) + (pmod(v6, 8) + 7)))];
          s_ey[1][pmod(floord(v6, 8), 7)][pmod((((v3 * 8) + -6) + (pmod(v6, 8) + 7)), 15)] = r0;
        }
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g1[gidx(1, ((v2 + -1) + pmod(floord(v6, 8), 7)), (((v3 * 8) + -6) + (pmod(v6, 8) + 7)))];
          s_ex[1][pmod(floord(v6, 8), 7)][pmod((((v3 * 8) + -6) + (pmod(v6, 8) + 7)), 15)] = r0;
        }
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g2[gidx(1, ((v2 + -1) + pmod(floord(v6, 8), 7)), (((v3 * 8) + -6) + (pmod(v6, 8) + 7)))];
          s_hz[1][pmod(floord(v6, 8), 7)][pmod((((v3 * 8) + -6) + (pmod(v6, 8) + 7)), 15)] = r0;
        }
      }
      workgroupBarrier();
    }
    if ((((((0 <= v1 && (v1 + 5) <= 17) && 1 <= v2) && (v2 + 4) <= 18) && 6 <= (v3 * 8)) && ((v3 * 8) + 7) <= 18)) {
      r1 = s_ey[pmod(floord(v1, 3), 2)][2][pmod(((v3 * 8) + i32(lid.x)), 15)];
      r2 = s_hz[pmod(floord(v1, 3), 2)][2][pmod(((v3 * 8) + i32(lid.x)), 15)];
      r3 = s_hz[pmod(floord(v1, 3), 2)][1][pmod(((v3 * 8) + i32(lid.x)), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord(v1, 3) + 1), 2)][2][pmod(((v3 * 8) + i32(lid.x)), 15)] = r0;
      g0[gidx(pmod((floord(v1, 3) + 1), 2), (v2 + 1), ((v3 * 8) + i32(lid.x)))] = r0;
      r1 = s_ey[pmod(floord(v1, 3), 2)][3][pmod(((v3 * 8) + i32(lid.x)), 15)];
      r2 = s_hz[pmod(floord(v1, 3), 2)][3][pmod(((v3 * 8) + i32(lid.x)), 15)];
      r3 = s_hz[pmod(floord(v1, 3), 2)][2][pmod(((v3 * 8) + i32(lid.x)), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord(v1, 3) + 1), 2)][3][pmod(((v3 * 8) + i32(lid.x)), 15)] = r0;
      g0[gidx(pmod((floord(v1, 3) + 1), 2), (v2 + 2), ((v3 * 8) + i32(lid.x)))] = r0;
      workgroupBarrier();
      r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)] = r0;
      g1[gidx(pmod((floord((v1 + 1), 3) + 1), 2), v2, (((v3 * 8) + i32(lid.x)) + -1))] = r0;
      r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)] = r0;
      g1[gidx(pmod((floord((v1 + 1), 3) + 1), 2), (v2 + 1), (((v3 * 8) + i32(lid.x)) + -1))] = r0;
      r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)] = r0;
      g1[gidx(pmod((floord((v1 + 1), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -1))] = r0;
      r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)] = r0;
      g1[gidx(pmod((floord((v1 + 1), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -1))] = r0;
      workgroupBarrier();
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
      g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), v2, (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
      g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), (v2 + 1), (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
      g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
      g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][6][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
      g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), (v2 + 4), (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      workgroupBarrier();
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][0][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
      g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), v2, (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
      g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), (v2 + 1), (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
      g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
      g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
      g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), (v2 + 4), (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      workgroupBarrier();
      r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
      r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
      r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)] = r0;
      g1[gidx(pmod((floord((v1 + 4), 3) + 1), 2), (v2 + 1), (((v3 * 8) + i32(lid.x)) + -4))] = r0;
      r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
      r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
      r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)] = r0;
      g1[gidx(pmod((floord((v1 + 4), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -4))] = r0;
      r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
      r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
      r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)] = r0;
      g1[gidx(pmod((floord((v1 + 4), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -4))] = r0;
      workgroupBarrier();
      r1 = s_hz[pmod(floord((v1 + 5), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r2 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
      r3 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r4 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r5 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 5), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)] = r0;
      g2[gidx(pmod((floord((v1 + 5), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -5))] = r0;
      r1 = s_hz[pmod(floord((v1 + 5), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r2 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
      r3 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r4 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r5 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)] = r0;
      g2[gidx(pmod((floord((v1 + 5), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -5))] = r0;
      workgroupBarrier();
    } else {
      if ((((0 <= v1 && v1 <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= ((v3 * 8) + i32(lid.x)) && ((v3 * 8) + i32(lid.x)) <= 18))) {
        r1 = s_ey[pmod(floord(v1, 3), 2)][2][pmod(((v3 * 8) + i32(lid.x)), 15)];
        r2 = s_hz[pmod(floord(v1, 3), 2)][2][pmod(((v3 * 8) + i32(lid.x)), 15)];
        r3 = s_hz[pmod(floord(v1, 3), 2)][1][pmod(((v3 * 8) + i32(lid.x)), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord(v1, 3) + 1), 2)][2][pmod(((v3 * 8) + i32(lid.x)), 15)] = r0;
        g0[gidx(pmod((floord(v1, 3) + 1), 2), (v2 + 1), ((v3 * 8) + i32(lid.x)))] = r0;
      }
      if ((((0 <= v1 && v1 <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= ((v3 * 8) + i32(lid.x)) && ((v3 * 8) + i32(lid.x)) <= 18))) {
        r1 = s_ey[pmod(floord(v1, 3), 2)][3][pmod(((v3 * 8) + i32(lid.x)), 15)];
        r2 = s_hz[pmod(floord(v1, 3), 2)][3][pmod(((v3 * 8) + i32(lid.x)), 15)];
        r3 = s_hz[pmod(floord(v1, 3), 2)][2][pmod(((v3 * 8) + i32(lid.x)), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord(v1, 3) + 1), 2)][3][pmod(((v3 * 8) + i32(lid.x)), 15)] = r0;
        g0[gidx(pmod((floord(v1, 3) + 1), 2), (v2 + 2), ((v3 * 8) + i32(lid.x)))] = r0;
      }
      workgroupBarrier();
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 17) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -1) && (((v3 * 8) + i32(lid.x)) + -1) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)] = r0;
        g1[gidx(pmod((floord((v1 + 1), 3) + 1), 2), v2, (((v3 * 8) + i32(lid.x)) + -1))] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -1) && (((v3 * 8) + i32(lid.x)) + -1) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)] = r0;
        g1[gidx(pmod((floord((v1 + 1), 3) + 1), 2), (v2 + 1), (((v3 * 8) + i32(lid.x)) + -1))] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -1) && (((v3 * 8) + i32(lid.x)) + -1) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)] = r0;
        g1[gidx(pmod((floord((v1 + 1), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -1))] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -1) && (((v3 * 8) + i32(lid.x)) + -1) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)] = r0;
        g1[gidx(pmod((floord((v1 + 1), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -1))] = r0;
      }
      workgroupBarrier();
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -2) && (((v3 * 8) + i32(lid.x)) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
        g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), v2, (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -2) && (((v3 * 8) + i32(lid.x)) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
        g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), (v2 + 1), (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -2) && (((v3 * 8) + i32(lid.x)) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
        g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -2) && (((v3 * 8) + i32(lid.x)) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
        g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= (v2 + 4) && (v2 + 4) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -2) && (((v3 * 8) + i32(lid.x)) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][6][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
        g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), (v2 + 4), (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      }
      workgroupBarrier();
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -3) && (((v3 * 8) + i32(lid.x)) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][0][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
        g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), v2, (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -3) && (((v3 * 8) + i32(lid.x)) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
        g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), (v2 + 1), (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -3) && (((v3 * 8) + i32(lid.x)) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
        g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -3) && (((v3 * 8) + i32(lid.x)) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
        g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= (v2 + 4) && (v2 + 4) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -3) && (((v3 * 8) + i32(lid.x)) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
        g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), (v2 + 4), (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      }
      workgroupBarrier();
      if ((((0 <= (v1 + 4) && (v1 + 4) <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -4) && (((v3 * 8) + i32(lid.x)) + -4) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
        r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
        r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)] = r0;
        g1[gidx(pmod((floord((v1 + 4), 3) + 1), 2), (v2 + 1), (((v3 * 8) + i32(lid.x)) + -4))] = r0;
      }
      if ((((0 <= (v1 + 4) && (v1 + 4) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -4) && (((v3 * 8) + i32(lid.x)) + -4) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
        r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
        r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)] = r0;
        g1[gidx(pmod((floord((v1 + 4), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -4))] = r0;
      }
      if ((((0 <= (v1 + 4) && (v1 + 4) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -4) && (((v3 * 8) + i32(lid.x)) + -4) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
        r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
        r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)] = r0;
        g1[gidx(pmod((floord((v1 + 4), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -4))] = r0;
      }
      workgroupBarrier();
      if ((((0 <= (v1 + 5) && (v1 + 5) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -5) && (((v3 * 8) + i32(lid.x)) + -5) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 5), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r2 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
        r3 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r4 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r5 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 5), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)] = r0;
        g2[gidx(pmod((floord((v1 + 5), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -5))] = r0;
      }
      if ((((0 <= (v1 + 5) && (v1 + 5) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -5) && (((v3 * 8) + i32(lid.x)) + -5) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 5), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r2 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
        r3 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r4 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r5 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)] = r0;
        g2[gidx(pmod((floord((v1 + 5), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -5))] = r0;
      }
      workgroupBarrier();
    }
  }
}

// block 8x1x1, 2520 bytes workgroup memory
@group(0) @binding(0) var<storage, read_write> g0: array<f32>;
@group(0) @binding(1) var<storage, read_write> g1: array<f32>;
@group(0) @binding(2) var<storage, read_write> g2: array<f32>;
struct Params { p0: i32, p1: i32 }
@group(1) @binding(0) var<uniform> P: Params;
var<workgroup> s_ey: array<array<array<f32, 15>, 7>, 2>;
var<workgroup> s_ex: array<array<array<f32, 15>, 7>, 2>;
var<workgroup> s_hz: array<array<array<f32, 15>, 7>, 2>;
override plane_stride: i32 = 1;
override stride0: i32 = 1;
fn gidx(plane: i32, i0: i32, i1: i32) -> u32 { return u32(plane * plane_stride + i0 * stride0 + i1); }
fn floord(a: i32, b: i32) -> i32 { var q = a / b; if ((a % b != 0) && ((a < 0) != (b < 0))) { q = q - 1; } return q; }
fn pmod(a: i32, b: i32) -> i32 { let r = a % b; if (r < 0) { return r + b; } return r; }
@compute @workgroup_size(8, 1, 1)
fn hybrid_fdtd2d_phase1(@builtin(local_invocation_id) lid: vec3<u32>, @builtin(workgroup_id) wid: vec3<u32>) {
  var v0: i32 = 0;
  var v1: i32 = 0;
  var v2: i32 = 0;
  var v3: i32 = 0;
  var v4: i32 = 0;
  var v5: i32 = 0;
  var v6: i32 = 0;
  var r0: f32 = 0.0;
  var r1: f32 = 0.0;
  var r2: f32 = 0.0;
  var r3: f32 = 0.0;
  var r4: f32 = 0.0;
  var r5: f32 = 0.0;
  v0 = (i32(wid.x) + P.p1);
  v1 = (P.p0 * 6);
  v2 = ((v0 * 7) - (P.p0 * -1));
  for (v3 = 0; v3 < 3; v3 = v3 + 1) {
    if (v3 == 0) {
      for (v5 = 0; v5 < 14; v5 = v5 + 1) {
        v6 = ((v5 * 8) + (i32(lid.x) + (i32(lid.y) * 8)));
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g0[gidx(0, ((v2 + -1) + pmod(floord(v6, 15), 7)), (((v3 * 8) + -6) + pmod(v6, 15)))];
          s_ey[0][pmod(floord(v6, 15), 7)][pmod((((v3 * 8) + -6) + pmod(v6, 15)), 15)] = r0;
        }
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g1[gidx(0, ((v2 + -1) + pmod(floord(v6, 15), 7)), (((v3 * 8) + -6) + pmod(v6, 15)))];
          s_ex[0][pmod(floord(v6, 15), 7)][pmod((((v3 * 8) + -6) + pmod(v6, 15)), 15)] = r0;
        }
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g2[gidx(0, ((v2 + -1) + pmod(floord(v6, 15), 7)), (((v3 * 8) + -6) + pmod(v6, 15)))];
          s_hz[0][pmod(floord(v6, 15), 7)][pmod((((v3 * 8) + -6) + pmod(v6, 15)), 15)] = r0;
        }
      }
      for (v5 = 0; v5 < 14; v5 = v5 + 1) {
        v6 = ((v5 * 8) + (i32(lid.x) + (i32(lid.y) * 8)));
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g0[gidx(1, ((v2 + -1) + pmod(floord(v6, 15), 7)), (((v3 * 8) + -6) + pmod(v6, 15)))];
          s_ey[1][pmod(floord(v6, 15), 7)][pmod((((v3 * 8) + -6) + pmod(v6, 15)), 15)] = r0;
        }
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g1[gidx(1, ((v2 + -1) + pmod(floord(v6, 15), 7)), (((v3 * 8) + -6) + pmod(v6, 15)))];
          s_ex[1][pmod(floord(v6, 15), 7)][pmod((((v3 * 8) + -6) + pmod(v6, 15)), 15)] = r0;
        }
        if (((v6 < 105 && (0 <= ((v2 + -1) + pmod(floord(v6, 15), 7)) && ((v2 + -1) + pmod(floord(v6, 15), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + pmod(v6, 15)) && (((v3 * 8) + -6) + pmod(v6, 15)) <= 19))) {
          r0 = g2[gidx(1, ((v2 + -1) + pmod(floord(v6, 15), 7)), (((v3 * 8) + -6) + pmod(v6, 15)))];
          s_hz[1][pmod(floord(v6, 15), 7)][pmod((((v3 * 8) + -6) + pmod(v6, 15)), 15)] = r0;
        }
      }
      workgroupBarrier();
    } else {
      for (v5 = 0; v5 < 7; v5 = v5 + 1) {
        v6 = ((v5 * 8) + (i32(lid.x) + (i32(lid.y) * 8)));
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g0[gidx(0, ((v2 + -1) + pmod(floord(v6, 8), 7)), (((v3 * 8) + -6) + (pmod(v6, 8) + 7)))];
          s_ey[0][pmod(floord(v6, 8), 7)][pmod((((v3 * 8) + -6) + (pmod(v6, 8) + 7)), 15)] = r0;
        }
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g1[gidx(0, ((v2 + -1) + pmod(floord(v6, 8), 7)), (((v3 * 8) + -6) + (pmod(v6, 8) + 7)))];
          s_ex[0][pmod(floord(v6, 8), 7)][pmod((((v3 * 8) + -6) + (pmod(v6, 8) + 7)), 15)] = r0;
        }
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g2[gidx(0, ((v2 + -1) + pmod(floord(v6, 8), 7)), (((v3 * 8) + -6) + (pmod(v6, 8) + 7)))];
          s_hz[0][pmod(floord(v6, 8), 7)][pmod((((v3 * 8) + -6) + (pmod(v6, 8) + 7)), 15)] = r0;
        }
      }
      for (v5 = 0; v5 < 7; v5 = v5 + 1) {
        v6 = ((v5 * 8) + (i32(lid.x) + (i32(lid.y) * 8)));
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g0[gidx(1, ((v2 + -1) + pmod(floord(v6, 8), 7)), (((v3 * 8) + -6) + (pmod(v6, 8) + 7)))];
          s_ey[1][pmod(floord(v6, 8), 7)][pmod((((v3 * 8) + -6) + (pmod(v6, 8) + 7)), 15)] = r0;
        }
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g1[gidx(1, ((v2 + -1) + pmod(floord(v6, 8), 7)), (((v3 * 8) + -6) + (pmod(v6, 8) + 7)))];
          s_ex[1][pmod(floord(v6, 8), 7)][pmod((((v3 * 8) + -6) + (pmod(v6, 8) + 7)), 15)] = r0;
        }
        if (((v6 < 56 && (0 <= ((v2 + -1) + pmod(floord(v6, 8), 7)) && ((v2 + -1) + pmod(floord(v6, 8), 7)) <= 19)) && (0 <= (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) && (((v3 * 8) + -6) + (pmod(v6, 8) + 7)) <= 19))) {
          r0 = g2[gidx(1, ((v2 + -1) + pmod(floord(v6, 8), 7)), (((v3 * 8) + -6) + (pmod(v6, 8) + 7)))];
          s_hz[1][pmod(floord(v6, 8), 7)][pmod((((v3 * 8) + -6) + (pmod(v6, 8) + 7)), 15)] = r0;
        }
      }
      workgroupBarrier();
    }
    if ((((((0 <= v1 && (v1 + 5) <= 17) && 1 <= v2) && (v2 + 4) <= 18) && 6 <= (v3 * 8)) && ((v3 * 8) + 7) <= 18)) {
      r1 = s_ey[pmod(floord(v1, 3), 2)][2][pmod(((v3 * 8) + i32(lid.x)), 15)];
      r2 = s_hz[pmod(floord(v1, 3), 2)][2][pmod(((v3 * 8) + i32(lid.x)), 15)];
      r3 = s_hz[pmod(floord(v1, 3), 2)][1][pmod(((v3 * 8) + i32(lid.x)), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord(v1, 3) + 1), 2)][2][pmod(((v3 * 8) + i32(lid.x)), 15)] = r0;
      g0[gidx(pmod((floord(v1, 3) + 1), 2), (v2 + 1), ((v3 * 8) + i32(lid.x)))] = r0;
      r1 = s_ey[pmod(floord(v1, 3), 2)][3][pmod(((v3 * 8) + i32(lid.x)), 15)];
      r2 = s_hz[pmod(floord(v1, 3), 2)][3][pmod(((v3 * 8) + i32(lid.x)), 15)];
      r3 = s_hz[pmod(floord(v1, 3), 2)][2][pmod(((v3 * 8) + i32(lid.x)), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord(v1, 3) + 1), 2)][3][pmod(((v3 * 8) + i32(lid.x)), 15)] = r0;
      g0[gidx(pmod((floord(v1, 3) + 1), 2), (v2 + 2), ((v3 * 8) + i32(lid.x)))] = r0;
      workgroupBarrier();
      r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)] = r0;
      g1[gidx(pmod((floord((v1 + 1), 3) + 1), 2), v2, (((v3 * 8) + i32(lid.x)) + -1))] = r0;
      r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)] = r0;
      g1[gidx(pmod((floord((v1 + 1), 3) + 1), 2), (v2 + 1), (((v3 * 8) + i32(lid.x)) + -1))] = r0;
      r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)] = r0;
      g1[gidx(pmod((floord((v1 + 1), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -1))] = r0;
      r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)] = r0;
      g1[gidx(pmod((floord((v1 + 1), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -1))] = r0;
      workgroupBarrier();
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
      g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), v2, (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
      g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), (v2 + 1), (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
      g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
      g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
      r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][6][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
      g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), (v2 + 4), (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      workgroupBarrier();
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][0][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
      g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), v2, (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
      g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), (v2 + 1), (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
      g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
      g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
      g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), (v2 + 4), (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      workgroupBarrier();
      r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
      r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
      r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)] = r0;
      g1[gidx(pmod((floord((v1 + 4), 3) + 1), 2), (v2 + 1), (((v3 * 8) + i32(lid.x)) + -4))] = r0;
      r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
      r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
      r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)] = r0;
      g1[gidx(pmod((floord((v1 + 4), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -4))] = r0;
      r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
      r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
      r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r0 = (r1 - (0.5f * (r2 - r3)));
      s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)] = r0;
      g1[gidx(pmod((floord((v1 + 4), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -4))] = r0;
      workgroupBarrier();
      r1 = s_hz[pmod(floord((v1 + 5), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r2 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
      r3 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r4 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r5 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 5), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)] = r0;
      g2[gidx(pmod((floord((v1 + 5), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -5))] = r0;
      r1 = s_hz[pmod(floord((v1 + 5), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r2 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
      r3 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r4 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r5 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
      r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
      s_hz[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)] = r0;
      g2[gidx(pmod((floord((v1 + 5), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -5))] = r0;
      workgroupBarrier();
    } else {
      if ((((0 <= v1 && v1 <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= ((v3 * 8) + i32(lid.x)) && ((v3 * 8) + i32(lid.x)) <= 18))) {
        r1 = s_ey[pmod(floord(v1, 3), 2)][2][pmod(((v3 * 8) + i32(lid.x)), 15)];
        r2 = s_hz[pmod(floord(v1, 3), 2)][2][pmod(((v3 * 8) + i32(lid.x)), 15)];
        r3 = s_hz[pmod(floord(v1, 3), 2)][1][pmod(((v3 * 8) + i32(lid.x)), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord(v1, 3) + 1), 2)][2][pmod(((v3 * 8) + i32(lid.x)), 15)] = r0;
        g0[gidx(pmod((floord(v1, 3) + 1), 2), (v2 + 1), ((v3 * 8) + i32(lid.x)))] = r0;
      }
      if ((((0 <= v1 && v1 <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= ((v3 * 8) + i32(lid.x)) && ((v3 * 8) + i32(lid.x)) <= 18))) {
        r1 = s_ey[pmod(floord(v1, 3), 2)][3][pmod(((v3 * 8) + i32(lid.x)), 15)];
        r2 = s_hz[pmod(floord(v1, 3), 2)][3][pmod(((v3 * 8) + i32(lid.x)), 15)];
        r3 = s_hz[pmod(floord(v1, 3), 2)][2][pmod(((v3 * 8) + i32(lid.x)), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord(v1, 3) + 1), 2)][3][pmod(((v3 * 8) + i32(lid.x)), 15)] = r0;
        g0[gidx(pmod((floord(v1, 3) + 1), 2), (v2 + 2), ((v3 * 8) + i32(lid.x)))] = r0;
      }
      workgroupBarrier();
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 17) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -1) && (((v3 * 8) + i32(lid.x)) + -1) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)] = r0;
        g1[gidx(pmod((floord((v1 + 1), 3) + 1), 2), v2, (((v3 * 8) + i32(lid.x)) + -1))] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -1) && (((v3 * 8) + i32(lid.x)) + -1) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)] = r0;
        g1[gidx(pmod((floord((v1 + 1), 3) + 1), 2), (v2 + 1), (((v3 * 8) + i32(lid.x)) + -1))] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -1) && (((v3 * 8) + i32(lid.x)) + -1) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)] = r0;
        g1[gidx(pmod((floord((v1 + 1), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -1))] = r0;
      }
      if ((((0 <= (v1 + 1) && (v1 + 1) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -1) && (((v3 * 8) + i32(lid.x)) + -1) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 1), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r2 = s_hz[pmod(floord((v1 + 1), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_hz[pmod(floord((v1 + 1), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 1), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)] = r0;
        g1[gidx(pmod((floord((v1 + 1), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -1))] = r0;
      }
      workgroupBarrier();
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -2) && (((v3 * 8) + i32(lid.x)) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
        g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), v2, (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -2) && (((v3 * 8) + i32(lid.x)) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
        g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), (v2 + 1), (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -2) && (((v3 * 8) + i32(lid.x)) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
        g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -2) && (((v3 * 8) + i32(lid.x)) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
        g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      }
      if ((((0 <= (v1 + 2) && (v1 + 2) <= 17) && (1 <= (v2 + 4) && (v2 + 4) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -2) && (((v3 * 8) + i32(lid.x)) + -2) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 2), 3), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r2 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -1), 15)];
        r3 = s_ex[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r4 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][6][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r5 = s_ey[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 2), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -2), 15)] = r0;
        g2[gidx(pmod((floord((v1 + 2), 3) + 1), 2), (v2 + 4), (((v3 * 8) + i32(lid.x)) + -2))] = r0;
      }
      workgroupBarrier();
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= v2 && v2 <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -3) && (((v3 * 8) + i32(lid.x)) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][0][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
        g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), v2, (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -3) && (((v3 * 8) + i32(lid.x)) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][1][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
        g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), (v2 + 1), (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -3) && (((v3 * 8) + i32(lid.x)) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
        g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -3) && (((v3 * 8) + i32(lid.x)) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
        g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      }
      if ((((0 <= (v1 + 3) && (v1 + 3) <= 17) && (1 <= (v2 + 4) && (v2 + 4) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -3) && (((v3 * 8) + i32(lid.x)) + -3) <= 18))) {
        r1 = s_ey[pmod(floord((v1 + 3), 3), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r2 = s_hz[pmod(floord((v1 + 3), 3), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r3 = s_hz[pmod(floord((v1 + 3), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ey[pmod((floord((v1 + 3), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -3), 15)] = r0;
        g0[gidx(pmod((floord((v1 + 3), 3) + 1), 2), (v2 + 4), (((v3 * 8) + i32(lid.x)) + -3))] = r0;
      }
      workgroupBarrier();
      if ((((0 <= (v1 + 4) && (v1 + 4) <= 17) && (1 <= (v2 + 1) && (v2 + 1) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -4) && (((v3 * 8) + i32(lid.x)) + -4) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
        r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
        r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][2][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)] = r0;
        g1[gidx(pmod((floord((v1 + 4), 3) + 1), 2), (v2 + 1), (((v3 * 8) + i32(lid.x)) + -4))] = r0;
      }
      if ((((0 <= (v1 + 4) && (v1 + 4) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -4) && (((v3 * 8) + i32(lid.x)) + -4) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
        r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
        r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)] = r0;
        g1[gidx(pmod((floord((v1 + 4), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -4))] = r0;
      }
      if ((((0 <= (v1 + 4) && (v1 + 4) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -4) && (((v3 * 8) + i32(lid.x)) + -4) <= 18))) {
        r1 = s_ex[pmod(floord((v1 + 4), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
        r2 = s_hz[pmod(floord((v1 + 4), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
        r3 = s_hz[pmod(floord((v1 + 4), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r0 = (r1 - (0.5f * (r2 - r3)));
        s_ex[pmod((floord((v1 + 4), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)] = r0;
        g1[gidx(pmod((floord((v1 + 4), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -4))] = r0;
      }
      workgroupBarrier();
      if ((((0 <= (v1 + 5) && (v1 + 5) <= 17) && (1 <= (v2 + 2) && (v2 + 2) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -5) && (((v3 * 8) + i32(lid.x)) + -5) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 5), 3), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r2 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
        r3 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r4 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r5 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 5), 3) + 1), 2)][3][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)] = r0;
        g2[gidx(pmod((floord((v1 + 5), 3) + 1), 2), (v2 + 2), (((v3 * 8) + i32(lid.x)) + -5))] = r0;
      }
      if ((((0 <= (v1 + 5) && (v1 + 5) <= 17) && (1 <= (v2 + 3) && (v2 + 3) <= 18)) && (1 <= (((v3 * 8) + i32(lid.x)) + -5) && (((v3 * 8) + i32(lid.x)) + -5) <= 18))) {
        r1 = s_hz[pmod(floord((v1 + 5), 3), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r2 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -4), 15)];
        r3 = s_ex[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r4 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][5][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r5 = s_ey[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)];
        r0 = (r1 - (0.7f * ((r2 - r3) + (r4 - r5))));
        s_hz[pmod((floord((v1 + 5), 3) + 1), 2)][4][pmod((((v3 * 8) + i32(lid.x)) + -5), 15)] = r0;
        g2[gidx(pmod((floord((v1 + 5), 3) + 1), 2), (v2 + 3), (((v3 * 8) + i32(lid.x)) + -5))] = r0;
      }
      workgroupBarrier();
    }
  }
}

