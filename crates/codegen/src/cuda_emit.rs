//! CUDA-C-like pretty printer for kernel IR.
//!
//! The emitted source is for inspection and documentation (the executable
//! artifact is the IR itself, interpreted by `gpusim`); it mirrors what
//! PPCG's CUDA backend would print for the same schedule.
//!
//! The actual grammar lives in [`crate::c_like`], shared with the HIP
//! backend; this module pins the CUDA dialect and keeps the historical
//! entry points stable (and byte-identical — the golden files under
//! `tests/golden/*.cu` prove it).

use crate::c_like::{kernel_to_c, CUDA_DIALECT};
use crate::ir::Kernel;

pub use crate::c_like::{cond_to_c, fexpr_to_c, iexpr_to_c};

/// Renders a full kernel as CUDA-like C source.
pub fn kernel_to_cuda(kernel: &Kernel) -> String {
    kernel_to_c(kernel, &CUDA_DIALECT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Cond, FExpr, IExpr, SharedBuf, Stmt};

    #[test]
    fn emits_compilable_looking_source() {
        let k = Kernel {
            name: "demo".into(),
            block_dim: [32, 1, 1],
            shared: vec![SharedBuf {
                name: "s_A".into(),
                dims: vec![2, 10],
            }],
            n_vars: 1,
            n_regs: 2,
            n_params: 1,
            body: vec![
                Stmt::SetVar {
                    var: 0,
                    value: IExpr::BlockIdx.scale(32).add(IExpr::ThreadIdx(0)),
                },
                Stmt::If {
                    cond: Cond::Lt(IExpr::Var(0), IExpr::Const(100)),
                    then_: vec![
                        Stmt::GlobalLoad {
                            dst: 0,
                            field: 0,
                            plane: IExpr::Param(0).modulo(2),
                            index: vec![IExpr::Var(0)],
                        },
                        Stmt::SharedStore {
                            buf: 0,
                            index: vec![IExpr::Const(0), IExpr::ThreadIdx(0).modulo(10)],
                            src: FExpr::Reg(0),
                        },
                    ],
                    else_: vec![],
                },
                Stmt::Sync,
            ],
        };
        let src = kernel_to_cuda(&k);
        assert!(src.contains("__global__ void demo"));
        assert!(src.contains("__shared__ float s_A[2][10];"));
        assert!(src.contains("__syncthreads();"));
        assert!(src.contains("if (v0 < 100)"));
        assert!(src.contains("g0[pmod(p0, 2)][v0]"));
    }
}
