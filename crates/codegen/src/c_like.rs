//! Shared C-family formatter layer.
//!
//! CUDA-C and HIP-C kernels differ only at the translation-unit edges
//! (include prologue, launch-bounds annotation); every expression,
//! condition and statement prints identically. This module owns that
//! common grammar once, parameterized by a tiny [`CDialect`], so the
//! `cuda` and `hip` backends cannot drift apart statement-by-statement.
//! The historical entry points (`cuda_emit::iexpr_to_c` and friends)
//! re-export from here unchanged.

use crate::ir::{Cond, FExpr, IExpr, Kernel, Stmt};
use std::fmt::Write;

/// The per-target knobs of the C-family printers. Everything not in
/// here is shared grammar.
pub struct CDialect {
    /// Translation-unit prologue emitted once per plan ("" for CUDA —
    /// the pseudo-source predates the backend split and stays
    /// header-free; HIP sources include the runtime header they would
    /// compile against).
    pub prologue: &'static str,
    /// Annotate kernels with `__launch_bounds__(threads)`. On AMD's
    /// 64-wide wavefronts occupancy is sensitive enough to it that the
    /// HIP backend always emits it; the CUDA output keeps its original
    /// (annotation-free) byte-identical form.
    pub launch_bounds: bool,
}

/// The CUDA flavor: no prologue, no launch bounds — byte-identical to
/// the emitter before the backend split.
pub const CUDA_DIALECT: CDialect = CDialect {
    prologue: "",
    launch_bounds: false,
};

/// The HIP flavor: runtime include plus `__launch_bounds__`.
pub const HIP_DIALECT: CDialect = CDialect {
    prologue: "#include <hip/hip_runtime.h>\n\n",
    launch_bounds: true,
};

/// Renders an integer expression as C.
pub fn iexpr_to_c(e: &IExpr) -> String {
    match e {
        IExpr::Const(c) => format!("{c}"),
        IExpr::Var(v) => format!("v{v}"),
        IExpr::Param(p) => format!("p{p}"),
        IExpr::ThreadIdx(0) => "threadIdx.x".into(),
        IExpr::ThreadIdx(1) => "threadIdx.y".into(),
        IExpr::ThreadIdx(_) => "threadIdx.z".into(),
        IExpr::BlockIdx => "blockIdx.x".into(),
        IExpr::Add(a, b) => format!("({} + {})", iexpr_to_c(a), iexpr_to_c(b)),
        IExpr::Sub(a, b) => format!("({} - {})", iexpr_to_c(a), iexpr_to_c(b)),
        IExpr::Mul(a, b) => format!("({} * {})", iexpr_to_c(a), iexpr_to_c(b)),
        IExpr::FloorDiv(a, k) => format!("floord({}, {k})", iexpr_to_c(a)),
        IExpr::Mod(a, k) => format!("pmod({}, {k})", iexpr_to_c(a)),
        IExpr::Min(a, b) => format!("min({}, {})", iexpr_to_c(a), iexpr_to_c(b)),
        IExpr::Max(a, b) => format!("max({}, {})", iexpr_to_c(a), iexpr_to_c(b)),
    }
}

/// Renders a condition as C.
pub fn cond_to_c(c: &Cond) -> String {
    match c {
        Cond::True => "1".into(),
        Cond::Le(a, b) => format!("{} <= {}", iexpr_to_c(a), iexpr_to_c(b)),
        Cond::Lt(a, b) => format!("{} < {}", iexpr_to_c(a), iexpr_to_c(b)),
        Cond::Eq(a, b) => format!("{} == {}", iexpr_to_c(a), iexpr_to_c(b)),
        Cond::And(a, b) => format!("({} && {})", cond_to_c(a), cond_to_c(b)),
        Cond::Or(a, b) => format!("({} || {})", cond_to_c(a), cond_to_c(b)),
        Cond::Not(a) => format!("!({})", cond_to_c(a)),
    }
}

/// Renders a float expression as C.
pub fn fexpr_to_c(e: &FExpr) -> String {
    match e {
        FExpr::Reg(r) => format!("r{r}"),
        FExpr::Const(c) => format!("{c:?}f"),
        FExpr::Add(a, b) => format!("({} + {})", fexpr_to_c(a), fexpr_to_c(b)),
        FExpr::Sub(a, b) => format!("({} - {})", fexpr_to_c(a), fexpr_to_c(b)),
        FExpr::Mul(a, b) => format!("({} * {})", fexpr_to_c(a), fexpr_to_c(b)),
        FExpr::Sqrt(a) => format!("sqrtf({})", fexpr_to_c(a)),
    }
}

fn idx_to_c(index: &[IExpr]) -> String {
    index
        .iter()
        .map(|e| format!("[{}]", iexpr_to_c(e)))
        .collect()
}

fn emit_stmts(out: &mut String, stmts: &[Stmt], kernel: &Kernel, depth: usize) {
    let pad = "  ".repeat(depth);
    for s in stmts {
        match s {
            Stmt::SetVar { var, value } => {
                let _ = writeln!(out, "{pad}int v{var} = {};", iexpr_to_c(value));
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}for (int v{var} = {}; v{var} < {}; v{var} += {step}) {{",
                    iexpr_to_c(lo),
                    iexpr_to_c(hi)
                );
                emit_stmts(out, body, kernel, depth + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::If { cond, then_, else_ } => {
                let _ = writeln!(out, "{pad}if ({}) {{", cond_to_c(cond));
                emit_stmts(out, then_, kernel, depth + 1);
                if else_.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    emit_stmts(out, else_, kernel, depth + 1);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            Stmt::GlobalLoad {
                dst,
                field,
                plane,
                index,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}r{dst} = g{field}[{}]{};",
                    iexpr_to_c(plane),
                    idx_to_c(index)
                );
            }
            Stmt::GlobalStore {
                field,
                plane,
                index,
                src,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}g{field}[{}]{} = {};",
                    iexpr_to_c(plane),
                    idx_to_c(index),
                    fexpr_to_c(src)
                );
            }
            Stmt::SharedLoad { dst, buf, index } => {
                let name = &kernel.shared[*buf].name;
                let _ = writeln!(out, "{pad}r{dst} = {name}{};", idx_to_c(index));
            }
            Stmt::SharedStore { buf, index, src } => {
                let name = &kernel.shared[*buf].name;
                let _ = writeln!(out, "{pad}{name}{} = {};", idx_to_c(index), fexpr_to_c(src));
            }
            Stmt::Compute { dst, expr } => {
                let _ = writeln!(out, "{pad}r{dst} = {};", fexpr_to_c(expr));
            }
            Stmt::Sync => {
                let _ = writeln!(out, "{pad}__syncthreads();");
            }
        }
    }
}

/// Renders a full kernel as C-family source under `dialect` (the
/// per-plan `dialect.prologue` is *not* included — plan emission owns
/// it, so multi-kernel plans include the runtime header exactly once).
pub fn kernel_to_c(kernel: &Kernel, dialect: &CDialect) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// block {}x{}x{}, {} bytes shared",
        kernel.block_dim[0],
        kernel.block_dim[1],
        kernel.block_dim[2],
        kernel.shared_bytes()
    );
    let params: Vec<String> = (0..kernel.n_params).map(|p| format!("int p{p}")).collect();
    let bounds = if dialect.launch_bounds {
        format!(" __launch_bounds__({})", kernel.threads_per_block())
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "__global__{bounds} void {}(float *g0 /* .. per field */, {}) {{",
        kernel.name,
        params.join(", ")
    );
    for b in &kernel.shared {
        let dims: String = b.dims.iter().map(|d| format!("[{d}]")).collect();
        let _ = writeln!(out, "  __shared__ float {}{dims};", b.name);
    }
    let _ = writeln!(
        out,
        "  float r0 /* .. r{} */;",
        kernel.n_regs.saturating_sub(1)
    );
    emit_stmts(&mut out, &kernel.body, kernel, 1);
    out.push_str("}\n");
    out
}
