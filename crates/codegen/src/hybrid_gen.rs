//! Hybrid hexagonal/classical kernel generation (§4).
//!
//! For each phase, one kernel is generated; the host launch plan loops
//! over time tiles `T`, launching phase 0 then phase 1 with a
//! one-dimensional grid of hexagonal tiles `S0` (§4.1). Inside a kernel:
//!
//! * classical tiles `S1..Sn` are sequential loops;
//! * a uniform `If` separates specialized full-tile code from guarded
//!   partial-tile code (§4.3.1) — full-tile point code carries no
//!   conditions at all, so it cannot diverge;
//! * the intra-tile time loop `a` is always fully unrolled and the hexagon
//!   row loop `b` optionally so (§4.3.2), with all row bounds resolved to
//!   constants at generation time (constraint-level unrolling);
//! * shared-memory staging follows the selected [`SmemStrategy`]
//!   (§4.2): copy-in/copy-out phases, interleaved copy-out, aligned
//!   copy-in windows, and static or dynamic inter-tile reuse.
//!
//! Global arrays are rings of `max_dt + 1` time planes per field. The
//! schedule is computed with storage dependences included
//! ([`HybridSchedule::compute_executable`]), so the ring is never
//! clobbered while a reader still needs an old value.

use std::fmt;

use hybrid_tiling::phase::Phase;
use hybrid_tiling::{HybridSchedule, TileError, TileParams};
use stencil::domain::ScheduledDomain;
use stencil::{StencilExpr, StencilProgram};

use crate::ir::{Cond, FExpr, IExpr, Kernel, Launch, LaunchPlan, SharedBuf, Stmt};
use crate::options::{CodegenOptions, SmemStrategy};

/// A typed code-generation failure.
///
/// Every input combination [`generate_hybrid`] rejects maps to one of
/// these variants instead of panicking — the compile service keeps
/// running no matter what (parseable) program, tile sizes or workload a
/// request supplies. The variants mirror the validation ladder: schedule
/// construction ([`CodegenError::Tile`]), workload shape
/// ([`CodegenError::DimsArity`], [`CodegenError::EmptyInterior`]),
/// hexagon geometry ([`CodegenError::EmptyHexagon`]) and the
/// multi-statement height constraint
/// ([`CodegenError::HeightNotMultiple`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodegenError {
    /// Hybrid schedule construction failed (§3 constraints).
    Tile(TileError),
    /// The workload's spatial arity does not match the program's.
    DimsArity {
        /// Dimensions supplied in the workload.
        got: usize,
        /// Spatial dimensions of the program.
        expected: usize,
    },
    /// A grid dimension is too small to hold one interior point for the
    /// stencil's halo.
    EmptyInterior {
        /// The offending spatial dimension (0-based).
        dim: usize,
        /// Grid extent requested for that dimension.
        extent: usize,
        /// Stencil radius along that dimension.
        radius: i64,
    },
    /// The hexagonal tile contains no integer points, so no kernel body
    /// can be generated.
    EmptyHexagon {
        /// Tile height parameter.
        h: i64,
        /// Hexagon width parameter.
        w0: i64,
    },
    /// Multi-statement kernels need the tile height `2h+2` to be a
    /// multiple of the statement count `k` (§4.3.2 unrolling resolves the
    /// statement index per row at generation time).
    HeightNotMultiple {
        /// Tile height `2h+2`.
        height: i64,
        /// Statements per outer iteration.
        k: i64,
    },
    /// The requested emission backend cannot lower the requested
    /// shared-memory strategy (e.g. WGSL has no dynamically-addressed
    /// workgroup-array equivalent of ladder step (f)). Raised by
    /// [`crate::backend::Backend::check_options`] before any IR is built.
    UnsupportedStrategy {
        /// Name of the rejecting backend.
        backend: &'static str,
        /// The strategy it cannot lower.
        smem: SmemStrategy,
    },
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Tile(e) => write!(f, "{e}"),
            CodegenError::DimsArity { got, expected } => write!(
                f,
                "workload has {got} spatial dimensions but the program has {expected}"
            ),
            CodegenError::EmptyInterior {
                dim,
                extent,
                radius,
            } => write!(
                f,
                "dimension {dim} has extent {extent}, too small for stencil radius \
                 {radius} (needs at least {})",
                2 * radius + 1
            ),
            CodegenError::EmptyHexagon { h, w0 } => write!(
                f,
                "hexagonal tile (h = {h}, w0 = {w0}) contains no integer points"
            ),
            CodegenError::HeightNotMultiple { height, k } => write!(
                f,
                "multi-statement kernels need the tile height 2h+2 = {height} to be a \
                 multiple of k = {k} (choose h so that h+1 is a multiple of k)"
            ),
            CodegenError::UnsupportedStrategy { backend, smem } => write!(
                f,
                "backend `{backend}` does not support shared-memory strategy {smem:?}"
            ),
        }
    }
}

impl std::error::Error for CodegenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodegenError::Tile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TileError> for CodegenError {
    fn from(e: TileError) -> CodegenError {
        CodegenError::Tile(e)
    }
}

/// The hybrid code generator, holding all derived geometry.
pub struct HybridCodegen<'a> {
    program: &'a StencilProgram,
    schedule: HybridSchedule,
    domain: ScheduledDomain,
    opts: CodegenOptions,
    dims: Vec<usize>,
    /// Spatial dimensionality `n`.
    n: usize,
    /// Statements per outer iteration.
    k: i64,
    /// Global plane ring depth (`max_dt + 1`).
    planes: i64,
    radius: Vec<i64>,
    /// Hexagon row `b` bounds per `a` (`a` indexed `0..2h+2`).
    rows: Vec<Option<(i64, i64)>>,
    b_min: i64,
    b_max: i64,
    /// Classical skews `⌊δ1_d · a⌋` per dimension (index 1..n) and `a`.
    skews: Vec<Vec<i64>>,
    /// Maximum classical skew per dimension (index 1..n) — precomputed so
    /// the per-point emitters never re-derive it from a possibly empty
    /// slice.
    skew_max: Vec<i64>,
    /// Left halo pad per classical dimension (index 1..n).
    pad_left: Vec<i64>,
    /// Shared box extents: `ext[0]` for the hexagon dim, `ext[d]` for
    /// classical dims.
    ext: Vec<i64>,
}

// Scalar variable slots.
const V_S0: usize = 0;
const V_TAUBASE: usize = 1;
const V_S0BASE: usize = 2;
const V_CLS0: usize = 3; // classical loop vars: V_CLS0 + (d-1)
const P_T: usize = 0;

const P_S0MIN: usize = 1;

/// The global-array translation (in words) that makes every copy-in row of
/// the innermost dimension start on a 128-byte boundary (§4.2.3: "we allow
/// the tiles in the schedule to be translated by manually specifying the
/// translation offset"). Returns 0 unless `opts.aligned_loads` is set.
/// Assumes the innermost tile width and the innermost grid extent are warp
/// multiples (the harness enforces both).
pub fn alignment_offset_words(
    program: &StencilProgram,
    params: &TileParams,
    opts: &CodegenOptions,
) -> i64 {
    if !opts.aligned_loads {
        return 0;
    }
    let n = program.spatial_dims();
    if n < 2 {
        return 0;
    }
    let Ok(schedule) = HybridSchedule::compute_executable(program, params) else {
        return 0;
    };
    let cd = &schedule.classical()[n - 2];
    let height = schedule.hex().box_height();
    let skew_max = (0..height).map(|a| cd.skew(a)).max().unwrap_or(0);
    let pad = skew_max + program.radius()[n - 1];
    pad.rem_euclid(32)
}

/// Generates the complete launch plan for running `program` on a grid of
/// `dims` for `steps` outer iterations under hybrid tiling.
///
/// # Errors
///
/// Every rejected input maps to a [`CodegenError`]: schedule-construction
/// failures, workload arity/interior mismatches, degenerate hexagons, and
/// the multi-statement height constraint (`k | 2h+2`). No input reachable
/// through this function panics — the compile service depends on that.
pub fn generate_hybrid(
    program: &StencilProgram,
    params: &TileParams,
    dims: &[usize],
    steps: usize,
    opts: CodegenOptions,
) -> Result<LaunchPlan, CodegenError> {
    let schedule = HybridSchedule::compute_executable(program, params)?;
    let n = program.spatial_dims();
    let k = program.num_statements() as i64;
    let height = schedule.hex().box_height();
    if k > 1 && height % k != 0 {
        return Err(CodegenError::HeightNotMultiple { height, k });
    }
    let radius = program.radius();
    // Validate the workload shape before `ScheduledDomain` (which asserts
    // the same properties) can abort the process.
    if dims.len() != n {
        return Err(CodegenError::DimsArity {
            got: dims.len(),
            expected: n,
        });
    }
    for (d, (&extent, &rad)) in dims.iter().zip(&radius).enumerate() {
        if (extent as i64) < 2 * rad + 1 {
            return Err(CodegenError::EmptyInterior {
                dim: d,
                extent,
                radius: rad,
            });
        }
    }
    let mut opts = opts;
    if n == 1 && opts.smem.uses_shared() {
        // 1-D hybrid tiling degenerates (paper §6.1); shared staging is
        // only generated for the 2-D/3-D cases.
        opts.smem = SmemStrategy::GlobalOnly;
    }
    let domain = ScheduledDomain::new(program, dims, steps);
    let hex = schedule.hex();
    let rows: Vec<Option<(i64, i64)>> = (0..height).map(|a| hex.row_range(a)).collect();
    let b_lo = rows.iter().flatten().map(|r| r.0).min();
    let b_hi = rows.iter().flatten().map(|r| r.1).max();
    let (Some(b_min), Some(b_max)) = (b_lo, b_hi) else {
        return Err(CodegenError::EmptyHexagon {
            h: hex.h(),
            w0: hex.w0(),
        });
    };
    let mut skews = vec![Vec::new()];
    let mut skew_max = vec![0i64];
    let mut pad_left = vec![0i64];
    let mut ext = vec![(b_max - b_min + 1) + 2 * radius[0]];
    for (d, &rad) in radius.iter().enumerate().take(n).skip(1) {
        let cd = &schedule.classical()[d - 1];
        let per_a: Vec<i64> = (0..height).map(|a| cd.skew(a)).collect();
        // `height = 2h+2 >= 2`, so the per-row skew list is never empty.
        let sk_max = per_a.iter().copied().max().unwrap_or(0);
        skews.push(per_a);
        skew_max.push(sk_max);
        let pad = sk_max + rad;
        pad_left.push(pad);
        ext.push(cd.width + pad + rad);
    }
    let gen = HybridCodegen {
        program,
        schedule,
        domain,
        opts,
        dims: dims.to_vec(),
        n,
        k,
        planes: program.max_dt() + 1,
        radius,
        rows,
        b_min,
        b_max,
        skews,
        skew_max,
        pad_left,
        ext,
    };
    Ok(gen.build_plan())
}

impl HybridCodegen<'_> {
    fn hex(&self) -> &hybrid_tiling::HexShape {
        self.schedule.hex()
    }

    fn height(&self) -> i64 {
        self.hex().box_height()
    }

    fn width(&self) -> i64 {
        self.hex().box_width()
    }

    /// Phase-specific time offset: `τ = T·H + a - t_off`.
    fn t_off(&self, phase: Phase) -> i64 {
        match phase {
            Phase::Zero => self.hex().h() + 1,
            Phase::One => 0,
        }
    }

    /// Phase-specific spatial offset of the box numerator.
    fn s_extra(&self, phase: Phase) -> i64 {
        match phase {
            Phase::Zero => self.hex().f0() + self.hex().w0() + 1,
            Phase::One => 0,
        }
    }

    fn drift(&self) -> i64 {
        self.hex().f1() - self.hex().f0()
    }

    /// Block shape: x covers the innermost classical width (coalescing),
    /// y the next one; the hexagon row `b` is a sequential per-thread loop.
    fn block_dim(&self) -> [usize; 3] {
        let widths: Vec<i64> = self.schedule.classical().iter().map(|c| c.width).collect();
        match self.n {
            1 => [
                ((self.b_max - self.b_min + 1).max(1) as usize).next_multiple_of(32),
                1,
                1,
            ],
            2 => [widths[0] as usize, 1, 1],
            _ => [widths[1] as usize, widths[0] as usize, 1],
        }
    }

    /// Thread expression covering classical dimension `d` (1-based).
    fn tid_for(&self, d: usize) -> IExpr {
        match self.n {
            2 => IExpr::ThreadIdx(0),
            _ => {
                if d == self.n - 1 {
                    IExpr::ThreadIdx(0)
                } else {
                    IExpr::ThreadIdx(1)
                }
            }
        }
    }

    /// Linearized thread id.
    fn tid_linear(&self) -> IExpr {
        let bd = self.block_dim();
        IExpr::ThreadIdx(0).add(IExpr::ThreadIdx(1).scale(bd[0] as i64))
    }

    /// Classical tile-loop bounds (constants) for dimension `d` (1-based).
    fn cls_range(&self, d: usize) -> (i64, i64) {
        let cd = &self.schedule.classical()[d - 1];
        let lo = self.domain.lo()[d];
        let hi = self.domain.hi()[d];
        (
            lo.div_euclid(cd.width),
            (hi + self.skew_max[d]).div_euclid(cd.width),
        )
    }

    /// Statement index at unrolled local time `a` for the given phase
    /// (constant because `k | 2h+2`).
    fn stmt_at(&self, phase: Phase, a: i64) -> usize {
        (a - self.t_off(phase)).rem_euclid(self.k) as usize
    }

    /// `τ` as an expression: `Var(V_TAUBASE) + a`.
    fn tau(&self, a: i64) -> IExpr {
        IExpr::Var(V_TAUBASE).offset(a)
    }

    /// Outer iteration `t = ⌊τ/k⌋`.
    fn t_outer(&self, a: i64) -> IExpr {
        if self.k == 1 {
            self.tau(a)
        } else {
            self.tau(a).fdiv(self.k)
        }
    }

    /// Ring plane holding values produced at outer iteration `t - dt`:
    /// `(t - dt + 1) mod planes`.
    fn plane_expr(&self, a: i64, dt: i64) -> IExpr {
        self.t_outer(a).offset(1 - dt).modulo(self.planes)
    }

    /// Global spatial index of classical dimension `d` at local time `a`:
    /// `w_d·S_d + tid - skew_d(a) + off`.
    fn global_cls(&self, d: usize, a: i64, off: i64) -> IExpr {
        let cd = &self.schedule.classical()[d - 1];
        IExpr::Var(V_CLS0 + d - 1)
            .scale(cd.width)
            .add(self.tid_for(d))
            .offset(-self.skews[d][a as usize] + off)
    }

    /// Shared-memory index for dimension `d` (1-based classical), given
    /// the same coordinates: dense (`local = tid - skew + off + pad`) or
    /// mod-mapped for [`SmemStrategy::ReuseStatic`].
    fn shared_cls(&self, d: usize, a: i64, off: i64) -> IExpr {
        if self.opts.smem == SmemStrategy::ReuseStatic && d == self.n - 1 {
            self.global_cls(d, a, off).modulo(self.ext[d])
        } else {
            self.tid_for(d)
                .offset(-self.skews[d][a as usize] + off + self.pad_left[d])
        }
    }

    /// Shared index along the hexagon dimension for row coordinate `b`:
    /// `b - b_min + r0 + off`.
    fn shared_hex(&self, b: IExpr, off: i64) -> IExpr {
        b.offset(-self.b_min + self.radius[0] + off)
    }

    /// Global `s0` for row coordinate `b`.
    fn global_hex(&self, b: IExpr, off: i64) -> IExpr {
        IExpr::Var(V_S0BASE).add(b).offset(off)
    }

    fn shared_bufs(&self) -> Vec<SharedBuf> {
        if !self.opts.smem.uses_shared() {
            return Vec::new();
        }
        self.program
            .field_names()
            .iter()
            .map(|name| {
                let mut dims = vec![self.planes as usize];
                for e in &self.ext {
                    dims.push(*e as usize);
                }
                SharedBuf {
                    name: format!("s_{name}"),
                    dims,
                }
            })
            .collect()
    }

    /// The uniform full-tile condition (§4.3.1).
    fn full_cond(&self) -> Cond {
        let tau_end = self.domain.tau_end();
        let mut c = Cond::Le(IExpr::Const(0), IExpr::Var(V_TAUBASE)).and(Cond::Le(
            IExpr::Var(V_TAUBASE).offset(self.height() - 1),
            IExpr::Const(tau_end - 1),
        ));
        c = c
            .and(Cond::Le(
                IExpr::Const(self.domain.lo()[0]),
                IExpr::Var(V_S0BASE).offset(self.b_min),
            ))
            .and(Cond::Le(
                IExpr::Var(V_S0BASE).offset(self.b_max),
                IExpr::Const(self.domain.hi()[0]),
            ));
        for d in 1..self.n {
            let cd = &self.schedule.classical()[d - 1];
            let base = IExpr::Var(V_CLS0 + d - 1).scale(cd.width);
            c = c
                .and(Cond::Le(
                    IExpr::Const(self.domain.lo()[d] + self.skew_max[d]),
                    base.clone(),
                ))
                .and(Cond::Le(
                    base.offset(cd.width - 1),
                    IExpr::Const(self.domain.hi()[d]),
                ));
        }
        c
    }

    /// Per-point guard for partial tiles: iteration inside the scheduled
    /// domain.
    fn point_guard(&self, phase: Phase, a: i64, b: i64) -> Cond {
        let tau_end = self.domain.tau_end();
        let _ = phase;
        let mut c = Cond::Le(IExpr::Const(0), self.tau(a))
            .and(Cond::Le(self.tau(a), IExpr::Const(tau_end - 1)));
        let s0 = self.global_hex(IExpr::Const(b), 0);
        c = c.and(Cond::between(
            &s0,
            IExpr::Const(self.domain.lo()[0]),
            IExpr::Const(self.domain.hi()[0]),
        ));
        for d in 1..self.n {
            let s = self.global_cls(d, a, 0);
            c = c.and(Cond::between(
                &s,
                IExpr::Const(self.domain.lo()[d]),
                IExpr::Const(self.domain.hi()[d]),
            ));
        }
        c
    }

    /// The FExpr of a statement body with loads resolved through
    /// `make_load`, which appends load statements and returns registers.
    #[allow(clippy::too_many_arguments)]
    fn build_fexpr(
        &self,
        e: &StencilExpr,
        loads: &mut Vec<Stmt>,
        next_reg: &mut usize,
        phase: Phase,
        a: i64,
        b: i64,
        from_shared: bool,
    ) -> FExpr {
        match e {
            StencilExpr::Load(acc) => {
                let reg = *next_reg;
                *next_reg += 1;
                let stmt = if from_shared {
                    let mut index = vec![self.plane_expr(a, acc.dt)];
                    index.push(self.shared_hex(IExpr::Const(b), acc.offsets[0]));
                    for d in 1..self.n {
                        index.push(self.shared_cls(d, a, acc.offsets[d]));
                    }
                    Stmt::SharedLoad {
                        dst: reg,
                        buf: acc.field.0,
                        index,
                    }
                } else {
                    let mut index = vec![self.global_hex(IExpr::Const(b), acc.offsets[0])];
                    for d in 1..self.n {
                        index.push(self.global_cls(d, a, acc.offsets[d]));
                    }
                    Stmt::GlobalLoad {
                        dst: reg,
                        field: acc.field.0,
                        plane: self.plane_expr(a, acc.dt),
                        index,
                    }
                };
                loads.push(stmt);
                let _ = phase;
                FExpr::Reg(reg)
            }
            StencilExpr::Const(c) => FExpr::Const(*c),
            StencilExpr::Add(x, y) => FExpr::Add(
                Box::new(self.build_fexpr(x, loads, next_reg, phase, a, b, from_shared)),
                Box::new(self.build_fexpr(y, loads, next_reg, phase, a, b, from_shared)),
            ),
            StencilExpr::Sub(x, y) => FExpr::Sub(
                Box::new(self.build_fexpr(x, loads, next_reg, phase, a, b, from_shared)),
                Box::new(self.build_fexpr(y, loads, next_reg, phase, a, b, from_shared)),
            ),
            StencilExpr::Mul(x, y) => FExpr::Mul(
                Box::new(self.build_fexpr(x, loads, next_reg, phase, a, b, from_shared)),
                Box::new(self.build_fexpr(y, loads, next_reg, phase, a, b, from_shared)),
            ),
            StencilExpr::Sqrt(x) => FExpr::Sqrt(Box::new(self.build_fexpr(
                x,
                loads,
                next_reg,
                phase,
                a,
                b,
                from_shared,
            ))),
        }
    }

    /// One stencil point: loads, compute, stores (shared and/or global).
    fn emit_point(&self, phase: Phase, a: i64, b: i64, guarded: bool) -> Vec<Stmt> {
        let i = self.stmt_at(phase, a);
        let st = &self.program.statements()[i];
        let from_shared = self.opts.smem.uses_shared();
        let mut body = Vec::new();
        let mut next_reg = 1;
        let expr = self.build_fexpr(&st.expr, &mut body, &mut next_reg, phase, a, b, from_shared);
        body.push(Stmt::Compute { dst: 0, expr });
        let wf = st.writes.0;
        let wplane = self.plane_expr(a, 0); // (t + 1) mod planes
        if from_shared {
            let mut index = vec![wplane.clone()];
            index.push(self.shared_hex(IExpr::Const(b), 0));
            for d in 1..self.n {
                index.push(self.shared_cls(d, a, 0));
            }
            body.push(Stmt::SharedStore {
                buf: wf,
                index,
                src: FExpr::Reg(0),
            });
        }
        if !from_shared || self.opts.smem.interleaved_copy_out() {
            let mut index = vec![self.global_hex(IExpr::Const(b), 0)];
            for d in 1..self.n {
                index.push(self.global_cls(d, a, 0));
            }
            body.push(Stmt::GlobalStore {
                field: wf,
                plane: wplane,
                index,
                src: FExpr::Reg(0),
            });
        }
        if guarded {
            vec![Stmt::If {
                cond: self.point_guard(phase, a, b),
                then_: body,
                else_: vec![],
            }]
        } else {
            body
        }
    }

    /// The copy-out walk for [`SmemStrategy::CopyInOut`]: re-visits every
    /// computed point, moving its value from shared to global.
    fn emit_copyout_point(&self, phase: Phase, a: i64, b: i64, guarded: bool) -> Vec<Stmt> {
        let i = self.stmt_at(phase, a);
        let wf = self.program.statements()[i].writes.0;
        let wplane = self.plane_expr(a, 0);
        let mut sidx = vec![wplane.clone()];
        sidx.push(self.shared_hex(IExpr::Const(b), 0));
        let mut gidx = vec![self.global_hex(IExpr::Const(b), 0)];
        for d in 1..self.n {
            sidx.push(self.shared_cls(d, a, 0));
            gidx.push(self.global_cls(d, a, 0));
        }
        let body = vec![
            Stmt::SharedLoad {
                dst: 0,
                buf: wf,
                index: sidx,
            },
            Stmt::GlobalStore {
                field: wf,
                plane: wplane,
                index: gidx,
                src: FExpr::Reg(0),
            },
        ];
        if guarded {
            vec![Stmt::If {
                cond: self.point_guard(phase, a, b),
                then_: body,
                else_: vec![],
            }]
        } else {
            body
        }
    }

    /// The full intra-tile sweep: unrolled `a`, per-row `b` iteration,
    /// with `emit(phase, a, b, guarded)` as the point body, and a barrier
    /// between time steps.
    fn emit_sweep(
        &self,
        phase: Phase,
        guarded: bool,
        emit: &dyn Fn(Phase, i64, i64, bool) -> Vec<Stmt>,
    ) -> Vec<Stmt> {
        let mut out = Vec::new();
        for a in 0..self.height() {
            let Some((blo, bhi)) = self.rows[a as usize] else {
                continue;
            };
            // The hexagon row is a compact interval; unroll or loop.
            if self.opts.unroll || self.n == 1 {
                for b in blo..=bhi {
                    out.extend(emit(phase, a, b, guarded));
                }
            } else {
                // Non-unrolled rows still resolve to constant bounds; emit
                // a loop over b via repeated emission under a loop var is
                // not possible with constant-b point bodies, so unrolling
                // is the only mode for row iteration (mirroring §4.3.2's
                // constraint-level unrolling).
                for b in blo..=bhi {
                    out.extend(emit(phase, a, b, guarded));
                }
            }
            out.push(Stmt::Sync);
        }
        out
    }

    /// Copy-in of a box region (all planes) from global to shared.
    /// `slab_only` restricts to the advancing window along the innermost
    /// classical dimension (inter-tile reuse).
    fn emit_copyin(&self, slab_only: bool) -> Vec<Stmt> {
        let mut out = Vec::new();
        let nthreads = {
            let bd = self.block_dim();
            (bd[0] * bd[1] * bd[2]) as i64
        };
        // Extents of the copied region per dimension (hexagon dim first).
        let mut region: Vec<i64> = self.ext.clone();
        let inner = self.n - 1;
        if slab_only && self.n >= 2 {
            region[inner] = self.schedule.classical()[inner - 1].width;
        }
        let cells: i64 = region.iter().product();
        let v_c = V_CLS0 + self.n; // chunk loop var
        let v_lin = v_c + 1;
        for plane in 0..self.planes {
            let mut chunk_body = vec![Stmt::SetVar {
                var: v_lin,
                value: IExpr::Var(v_c).scale(nthreads).add(self.tid_linear()),
            }];
            // Decompose v_lin into local coordinates (row-major over
            // `region`): local_d = (lin / prod(region[d+1..])) mod region[d].
            let mut locals: Vec<IExpr> = Vec::new();
            for d in 0..self.n {
                let tail: i64 = region[d + 1..].iter().product();
                let coord = if tail == 1 {
                    IExpr::Var(v_lin)
                } else {
                    IExpr::Var(v_lin).fdiv(tail)
                };
                locals.push(coord.modulo(region[d]));
            }
            // Global coordinates.
            let mut globals: Vec<IExpr> = Vec::new();
            let g0 = IExpr::Var(V_S0BASE)
                .offset(self.b_min - self.radius[0])
                .add(locals[0].clone());
            globals.push(g0);
            for d in 1..self.n {
                let cd = &self.schedule.classical()[d - 1];
                let base = IExpr::Var(V_CLS0 + d - 1)
                    .scale(cd.width)
                    .offset(-self.pad_left[d]);
                let local = if slab_only && d == inner {
                    locals[d].clone().offset(self.ext[d] - region[d])
                } else {
                    locals[d].clone()
                };
                globals.push(base.add(local));
            }
            // Shared indices: dense locals, except the innermost classical
            // dimension under static reuse, which is global-mod-extent.
            let mut sidx: Vec<IExpr> = vec![IExpr::Const(plane)];
            sidx.push(locals[0].clone());
            for d in 1..self.n {
                let s = if self.opts.smem == SmemStrategy::ReuseStatic && d == inner {
                    globals[d].clone().modulo(self.ext[d])
                } else if slab_only && d == inner {
                    locals[d].clone().offset(self.ext[d] - region[d])
                } else {
                    locals[d].clone()
                };
                sidx.push(s);
            }
            // Guard: chunk in range and global coordinates inside the grid.
            let mut guard = Cond::Lt(IExpr::Var(v_lin), IExpr::Const(cells));
            for (d, g) in globals.iter().enumerate() {
                guard = guard.and(Cond::between(
                    g,
                    IExpr::Const(0),
                    IExpr::Const(self.dims[d] as i64 - 1),
                ));
            }
            for field in 0..self.program.num_fields() {
                let mut body = vec![Stmt::GlobalLoad {
                    dst: 0,
                    field,
                    plane: IExpr::Const(plane),
                    index: globals.clone(),
                }];
                let mut s = sidx.clone();
                s[0] = IExpr::Const(plane);
                body.push(Stmt::SharedStore {
                    buf: field,
                    index: s,
                    src: FExpr::Reg(0),
                });
                chunk_body.push(Stmt::If {
                    cond: guard.clone(),
                    then_: body,
                    else_: vec![],
                });
            }
            out.push(Stmt::For {
                var: v_c,
                lo: IExpr::Const(0),
                hi: IExpr::Const((cells + nthreads - 1).div_euclid(nthreads)),
                step: 1,
                body: chunk_body,
            });
        }
        out.push(Stmt::Sync);
        out
    }

    /// The shared-to-shared move phase of dynamic reuse: shifts the
    /// overlap window left by `w_inner`.
    fn emit_move(&self) -> Vec<Stmt> {
        let inner = self.n - 1;
        let w_inner = self.schedule.classical()[inner - 1].width;
        let mut region: Vec<i64> = self.ext.clone();
        region[inner] = self.ext[inner] - w_inner;
        let cells: i64 = region.iter().product();
        if cells <= 0 {
            return vec![];
        }
        let nthreads = {
            let bd = self.block_dim();
            (bd[0] * bd[1] * bd[2]) as i64
        };
        let v_c = V_CLS0 + self.n;
        let v_lin = v_c + 1;
        let mut out = Vec::new();
        for plane in 0..self.planes {
            let mut chunk_body = vec![Stmt::SetVar {
                var: v_lin,
                value: IExpr::Var(v_c).scale(nthreads).add(self.tid_linear()),
            }];
            let mut locals: Vec<IExpr> = Vec::new();
            for d in 0..self.n {
                let tail: i64 = region[d + 1..].iter().product();
                let coord = if tail == 1 {
                    IExpr::Var(v_lin)
                } else {
                    IExpr::Var(v_lin).fdiv(tail)
                };
                locals.push(coord.modulo(region[d]));
            }
            let mut src_idx = vec![IExpr::Const(plane)];
            let mut dst_idx = vec![IExpr::Const(plane)];
            for (d, l) in locals.iter().enumerate() {
                if d == inner {
                    src_idx.push(l.clone().offset(w_inner));
                    dst_idx.push(l.clone());
                } else {
                    src_idx.push(l.clone());
                    dst_idx.push(l.clone());
                }
            }
            let guard = Cond::Lt(IExpr::Var(v_lin), IExpr::Const(cells));
            for field in 0..self.program.num_fields() {
                chunk_body.push(Stmt::If {
                    cond: guard.clone(),
                    then_: vec![
                        Stmt::SharedLoad {
                            dst: 0,
                            buf: field,
                            index: src_idx.clone(),
                        },
                        Stmt::SharedStore {
                            buf: field,
                            index: dst_idx.clone(),
                            src: FExpr::Reg(0),
                        },
                    ],
                    else_: vec![],
                });
            }
            out.push(Stmt::For {
                var: v_c,
                lo: IExpr::Const(0),
                hi: IExpr::Const((cells + nthreads - 1).div_euclid(nthreads)),
                step: 1,
                body: chunk_body,
            });
        }
        out.push(Stmt::Sync);
        out
    }

    /// The body of one classical tile iteration.
    fn emit_tile_body(&self, phase: Phase) -> Vec<Stmt> {
        let mut body = Vec::new();
        if self.opts.smem.uses_shared() {
            if self.opts.smem.inter_tile_reuse() && self.n >= 2 {
                let inner_var = V_CLS0 + self.n - 2;
                let (lo, _) = self.cls_range(self.n - 1);
                let first = Cond::Eq(IExpr::Var(inner_var), IExpr::Const(lo));
                let mut else_branch = Vec::new();
                if self.opts.smem == SmemStrategy::ReuseDynamic {
                    else_branch.extend(self.emit_move());
                }
                else_branch.extend(self.emit_copyin(true));
                body.push(Stmt::If {
                    cond: first,
                    then_: self.emit_copyin(false),
                    else_: else_branch,
                });
            } else {
                body.extend(self.emit_copyin(false));
            }
        }
        let full = {
            let mut v = self.emit_sweep(phase, false, &|p, a, b, g| self.emit_point(p, a, b, g));
            if self.opts.smem == SmemStrategy::CopyInOut {
                v.extend(self.emit_sweep(phase, false, &|p, a, b, g| {
                    self.emit_copyout_point(p, a, b, g)
                }));
            }
            v
        };
        let partial = {
            let mut v = self.emit_sweep(phase, true, &|p, a, b, g| self.emit_point(p, a, b, g));
            if self.opts.smem == SmemStrategy::CopyInOut {
                v.extend(self.emit_sweep(phase, true, &|p, a, b, g| {
                    self.emit_copyout_point(p, a, b, g)
                }));
            }
            v
        };
        body.push(Stmt::If {
            cond: self.full_cond(),
            then_: full,
            else_: partial,
        });
        body
    }

    /// Builds the kernel for one phase.
    fn build_kernel(&self, phase: Phase) -> Kernel {
        let mut body = vec![
            Stmt::SetVar {
                var: V_S0,
                value: IExpr::BlockIdx.add(IExpr::Param(P_S0MIN)),
            },
            Stmt::SetVar {
                var: V_TAUBASE,
                value: IExpr::Param(P_T)
                    .scale(self.height())
                    .offset(-self.t_off(phase)),
            },
            Stmt::SetVar {
                var: V_S0BASE,
                value: IExpr::Var(V_S0)
                    .scale(self.width())
                    .sub(IExpr::Param(P_T).scale(self.drift()))
                    .offset(-self.s_extra(phase)),
            },
        ];
        // Nest classical tile loops around the tile body.
        let mut inner = self.emit_tile_body(phase);
        for d in (1..self.n).rev() {
            let (lo, hi) = self.cls_range(d);
            inner = vec![Stmt::For {
                var: V_CLS0 + d - 1,
                lo: IExpr::Const(lo),
                hi: IExpr::Const(hi + 1),
                step: 1,
                body: inner,
            }];
        }
        body.extend(inner);
        let max_loads = self
            .program
            .statements()
            .iter()
            .map(|s| s.expr.loads().len())
            .max()
            .unwrap_or(1);
        Kernel {
            name: format!(
                "hybrid_{}_phase{}",
                self.program.name(),
                match phase {
                    Phase::Zero => 0,
                    Phase::One => 1,
                }
            ),
            block_dim: self.block_dim(),
            shared: self.shared_bufs(),
            n_vars: V_CLS0 + self.n + 2,
            n_regs: max_loads + 1,
            n_params: 2,
            body,
        }
    }

    /// `S0` tile range intersecting the domain for `(phase, T)`.
    fn s0_range(&self, phase: Phase, t_tile: i64) -> (i64, i64) {
        let num_lo = self.domain.lo()[0] + self.s_extra(phase) + t_tile * self.drift();
        let num_hi = self.domain.hi()[0] + self.s_extra(phase) + t_tile * self.drift();
        (
            (num_lo - self.b_max).div_euclid(self.width()),
            (num_hi - self.b_min).div_euclid(self.width()),
        )
    }

    /// Time-tile range for a phase.
    fn t_range(&self, phase: Phase) -> (i64, i64) {
        let tau_last = self.domain.tau_end() - 1;
        match phase {
            Phase::Zero => (0, (tau_last + self.hex().h() + 1).div_euclid(self.height())),
            Phase::One => (0, tau_last.div_euclid(self.height())),
        }
    }

    fn build_plan(&self) -> LaunchPlan {
        let k0 = self.build_kernel(Phase::Zero);
        let k1 = self.build_kernel(Phase::One);
        let mut launches = Vec::new();
        let (t0_min, t0_max) = self.t_range(Phase::Zero);
        let (t1_min, t1_max) = self.t_range(Phase::One);
        for t in t0_min.min(t1_min)..=t0_max.max(t1_max) {
            if t >= t0_min && t <= t0_max {
                let (lo, hi) = self.s0_range(Phase::Zero, t);
                launches.push(Launch {
                    kernel: 0,
                    params: vec![t, lo],
                    blocks: (hi - lo + 1).max(0) as usize,
                });
            }
            if t >= t1_min && t <= t1_max {
                let (lo, hi) = self.s0_range(Phase::One, t);
                launches.push(Launch {
                    kernel: 1,
                    params: vec![t, lo],
                    blocks: (hi - lo + 1).max(0) as usize,
                });
            }
        }
        LaunchPlan {
            kernels: vec![k0, k1],
            launches,
            description: format!(
                "hybrid hexagonal/classical tiling of {} ({:?}, aligned={}, h={}, w={:?})",
                self.program.name(),
                self.opts.smem,
                self.opts.aligned_loads,
                self.hex().h(),
                {
                    let mut w = vec![self.hex().w0()];
                    w.extend(self.schedule.classical().iter().map(|c| c.width));
                    w
                },
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::gallery;

    #[test]
    fn plan_structure_for_jacobi() {
        let p = gallery::jacobi2d();
        let plan = generate_hybrid(
            &p,
            &TileParams::new(1, &[2, 8]),
            &[20, 20],
            6,
            CodegenOptions::best(),
        )
        .unwrap();
        assert_eq!(plan.kernels.len(), 2);
        assert!(plan.launches.len() >= 4);
        // Phase 0 launches precede phase 1 launches of the same T.
        let first_two: Vec<usize> = plan.launches[..2].iter().map(|l| l.kernel).collect();
        assert_eq!(first_two, vec![0, 1]);
    }

    #[test]
    fn shared_buffers_sized_from_geometry() {
        let p = gallery::jacobi2d();
        let plan = generate_hybrid(
            &p,
            &TileParams::new(2, &[3, 8]),
            &[32, 32],
            8,
            CodegenOptions::best(),
        )
        .unwrap();
        let k = &plan.kernels[0];
        assert_eq!(k.shared.len(), 1);
        // planes = 2; hexagon b-span is [0, 7] for h=2, w0=3, δ=1, plus a
        // halo of radius 1 on both sides.
        assert_eq!(k.shared[0].dims[0], 2);
        assert_eq!(k.shared[0].dims[1], 8 + 2);
    }

    #[test]
    fn multi_statement_requires_height_multiple() {
        let p = gallery::fdtd2d();
        // k = 3, h = 1 -> H = 4 not divisible by 3.
        let err = generate_hybrid(
            &p,
            &TileParams::new(1, &[2, 8]),
            &[20, 20],
            4,
            CodegenOptions::best(),
        );
        assert!(err.is_err());
        // h = 2 -> H = 6 works.
        let ok = generate_hybrid(
            &p,
            &TileParams::new(2, &[2, 8]),
            &[20, 20],
            4,
            CodegenOptions::best(),
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn workload_arity_mismatch_is_an_error_not_a_panic() {
        // Regression: a 1-D workload for a 2-D program used to abort in
        // `ScheduledDomain::new`'s arity assert; reachable from any serve
        // request that pairs a program with the wrong `size`.
        let p = gallery::jacobi2d();
        let err = generate_hybrid(
            &p,
            &TileParams::new(1, &[2, 8]),
            &[20],
            6,
            CodegenOptions::best(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            CodegenError::DimsArity {
                got: 1,
                expected: 2
            }
        );
        assert!(err.to_string().contains("spatial dimensions"));
    }

    #[test]
    fn empty_interior_is_an_error_not_a_panic() {
        // Regression: a grid smaller than the stencil halo used to abort
        // in `ScheduledDomain::new`'s interior assert.
        let p = gallery::jacobi2d();
        let err = generate_hybrid(
            &p,
            &TileParams::new(1, &[2, 8]),
            &[20, 2],
            6,
            CodegenOptions::best(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            CodegenError::EmptyInterior {
                dim: 1,
                extent: 2,
                radius: 1
            }
        );
        assert!(err.to_string().contains("too small"));
    }

    #[test]
    fn tile_errors_carry_their_source() {
        let p = gallery::jacobi2d();
        // Arity mismatch at the schedule level surfaces as Tile(..).
        let err = generate_hybrid(
            &p,
            &TileParams::new(1, &[2]),
            &[20, 20],
            6,
            CodegenOptions::best(),
        )
        .unwrap_err();
        assert!(matches!(err, CodegenError::Tile(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn one_d_falls_back_to_global_only() {
        let p = gallery::contrived1d();
        let plan = generate_hybrid(
            &p,
            &TileParams::new(2, &[3]),
            &[64],
            8,
            CodegenOptions::best(),
        )
        .unwrap();
        assert!(plan.kernels[0].shared.is_empty());
    }
}
