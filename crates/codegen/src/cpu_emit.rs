//! Whole-block vectorized CPU lowering of kernel IR to portable C.
//!
//! One GPU thread block becomes one C function; the block's threads
//! become `lane` iterations of short per-statement loops. Running every
//! lane through statement *N* before any lane reaches statement *N+1*
//! is statement-level lockstep, which makes every `__syncthreads()`
//! point barrier-synchronous by construction — the barrier erases to a
//! comment. Divergent `if`s (conditions that mention `threadIdx` or a
//! thread-dependent variable) become per-lane mask arrays guarding the
//! lane loops underneath, exactly the predication a SIMD compiler would
//! apply.
//!
//! Unlike the schematic CUDA/HIP artifacts (whose multi-dimensional
//! global subscripts document the access pattern rather than compile),
//! this emitter produces genuine C99: globals are flat `float *`
//! per-field pointers subscripted through caller-supplied `long`
//! strides, so `cc -c` accepts every artifact (CI checks this). The
//! in-process executable twin is the `gpusim` bytecode path
//! (`run_plan_parallel` compiles the same IR to closures), which the
//! driver's verify step checks bit-exact against the sequential
//! interpreter oracle.
//!
//! Variable classification: a `v` is **lane-dependent** if its value
//! expression mentions `threadIdx` or another lane-dependent variable,
//! or if it is assigned under a divergent branch (all lanes must keep
//! their own copy then). Lane-dependent variables print as
//! `int vN[TPB]`, uniform ones as scalars. `For` loop variables are
//! always uniform — the IR contract guarantees thread-independent loop
//! bounds. Float registers are always per-lane.

use crate::ir::{Cond, FExpr, IExpr, Kernel, Stmt};
use std::collections::HashSet;
use std::fmt::Write;

/// Translation-unit prologue for a CPU plan: the integer helpers the
/// expression grammar relies on (plain C has no `min`/`max`).
pub const CPU_PROLOGUE: &str = "\
// Vectorized whole-block CPU lowering: one function per kernel, one
// `lane` loop iteration per GPU thread. Statement-level lockstep makes
// every former __syncthreads() barrier-synchronous by construction.
#include <math.h>

static inline int floord(int a, int b) {
  int q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}
static inline int pmod(int a, int b) { int r = a % b; return r < 0 ? r + b : r; }
static inline int min(int a, int b) { return a < b ? a : b; }
static inline int max(int a, int b) { return a > b ? a : b; }

";

struct Ctx<'a> {
    kernel: &'a Kernel,
    lane_dep: HashSet<usize>,
    tpb: usize,
}

fn iexpr_mentions_lane(e: &IExpr, lane_dep: &HashSet<usize>) -> bool {
    match e {
        IExpr::Const(_) | IExpr::Param(_) | IExpr::BlockIdx => false,
        IExpr::ThreadIdx(_) => true,
        IExpr::Var(v) => lane_dep.contains(v),
        IExpr::Add(a, b)
        | IExpr::Sub(a, b)
        | IExpr::Mul(a, b)
        | IExpr::Min(a, b)
        | IExpr::Max(a, b) => iexpr_mentions_lane(a, lane_dep) || iexpr_mentions_lane(b, lane_dep),
        IExpr::FloorDiv(a, _) | IExpr::Mod(a, _) => iexpr_mentions_lane(a, lane_dep),
    }
}

fn cond_mentions_lane(c: &Cond, lane_dep: &HashSet<usize>) -> bool {
    match c {
        Cond::True => false,
        Cond::Le(a, b) | Cond::Lt(a, b) | Cond::Eq(a, b) => {
            iexpr_mentions_lane(a, lane_dep) || iexpr_mentions_lane(b, lane_dep)
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            cond_mentions_lane(a, lane_dep) || cond_mentions_lane(b, lane_dep)
        }
        Cond::Not(a) => cond_mentions_lane(a, lane_dep),
    }
}

/// One pass of the classification fixed point; returns true if the set
/// grew. `divergent` tracks whether we are under a lane-dependent `if`.
fn classify(stmts: &[Stmt], lane_dep: &mut HashSet<usize>, divergent: bool) -> bool {
    let mut grew = false;
    for s in stmts {
        match s {
            Stmt::SetVar { var, value } if divergent || iexpr_mentions_lane(value, lane_dep) => {
                grew |= lane_dep.insert(*var);
            }
            Stmt::For { body, .. } => {
                // Loop variables stay uniform (thread-independent bounds
                // are an IR invariant); only the body is walked.
                grew |= classify(body, lane_dep, divergent);
            }
            Stmt::If { cond, then_, else_ } => {
                let div = divergent || cond_mentions_lane(cond, lane_dep);
                grew |= classify(then_, lane_dep, div);
                grew |= classify(else_, lane_dep, div);
            }
            _ => {}
        }
    }
    grew
}

/// Deepest nesting of divergent `if`s — how many mask arrays we need.
fn mask_depth(stmts: &[Stmt], lane_dep: &HashSet<usize>, divergent: bool) -> usize {
    let mut deepest = 0;
    for s in stmts {
        let d = match s {
            Stmt::For { body, .. } => mask_depth(body, lane_dep, divergent),
            Stmt::If { cond, then_, else_ } => {
                let div = divergent || cond_mentions_lane(cond, lane_dep);
                let inner = mask_depth(then_, lane_dep, div).max(mask_depth(else_, lane_dep, div));
                if div {
                    inner + 1
                } else {
                    inner
                }
            }
            _ => 0,
        };
        deepest = deepest.max(d);
    }
    deepest
}

fn iexpr_to_cpu(e: &IExpr, ctx: &Ctx) -> String {
    let [bx, by, _] = ctx.kernel.block_dim;
    match e {
        IExpr::Const(c) => format!("{c}"),
        IExpr::Var(v) if ctx.lane_dep.contains(v) => format!("v{v}[lane]"),
        IExpr::Var(v) => format!("v{v}"),
        IExpr::Param(p) => format!("p{p}"),
        IExpr::ThreadIdx(0) => format!("(lane % {bx})"),
        IExpr::ThreadIdx(1) => format!("((lane / {bx}) % {by})"),
        IExpr::ThreadIdx(_) => format!("(lane / {})", bx * by),
        IExpr::BlockIdx => "blockIdx".into(),
        IExpr::Add(a, b) => format!("({} + {})", iexpr_to_cpu(a, ctx), iexpr_to_cpu(b, ctx)),
        IExpr::Sub(a, b) => format!("({} - {})", iexpr_to_cpu(a, ctx), iexpr_to_cpu(b, ctx)),
        IExpr::Mul(a, b) => format!("({} * {})", iexpr_to_cpu(a, ctx), iexpr_to_cpu(b, ctx)),
        IExpr::FloorDiv(a, k) => format!("floord({}, {k})", iexpr_to_cpu(a, ctx)),
        IExpr::Mod(a, k) => format!("pmod({}, {k})", iexpr_to_cpu(a, ctx)),
        IExpr::Min(a, b) => format!("min({}, {})", iexpr_to_cpu(a, ctx), iexpr_to_cpu(b, ctx)),
        IExpr::Max(a, b) => format!("max({}, {})", iexpr_to_cpu(a, ctx), iexpr_to_cpu(b, ctx)),
    }
}

fn cond_to_cpu(c: &Cond, ctx: &Ctx) -> String {
    match c {
        Cond::True => "1".into(),
        Cond::Le(a, b) => format!("{} <= {}", iexpr_to_cpu(a, ctx), iexpr_to_cpu(b, ctx)),
        Cond::Lt(a, b) => format!("{} < {}", iexpr_to_cpu(a, ctx), iexpr_to_cpu(b, ctx)),
        Cond::Eq(a, b) => format!("{} == {}", iexpr_to_cpu(a, ctx), iexpr_to_cpu(b, ctx)),
        Cond::And(a, b) => format!("({} && {})", cond_to_cpu(a, ctx), cond_to_cpu(b, ctx)),
        Cond::Or(a, b) => format!("({} || {})", cond_to_cpu(a, ctx), cond_to_cpu(b, ctx)),
        Cond::Not(a) => format!("!({})", cond_to_cpu(a, ctx)),
    }
}

fn fexpr_to_cpu(e: &FExpr) -> String {
    match e {
        FExpr::Reg(r) => format!("r{r}[lane]"),
        FExpr::Const(c) => format!("{c:?}f"),
        FExpr::Add(a, b) => format!("({} + {})", fexpr_to_cpu(a), fexpr_to_cpu(b)),
        FExpr::Sub(a, b) => format!("({} - {})", fexpr_to_cpu(a), fexpr_to_cpu(b)),
        FExpr::Mul(a, b) => format!("({} * {})", fexpr_to_cpu(a), fexpr_to_cpu(b)),
        FExpr::Sqrt(a) => format!("sqrtf({})", fexpr_to_cpu(a)),
    }
}

fn idx_to_cpu(index: &[IExpr], ctx: &Ctx) -> String {
    index
        .iter()
        .map(|e| format!("[{}]", iexpr_to_cpu(e, ctx)))
        .collect()
}

/// Walks every statement in a body, recursing through control flow.
fn visit<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::For { body, .. } => visit(body, f),
            Stmt::If { then_, else_, .. } => {
                visit(then_, f);
                visit(else_, f);
            }
            _ => {}
        }
    }
}

/// `(fields, spatial dims)` of the kernel's global accesses: how many
/// per-field pointers the signature needs, and how many stride
/// parameters flatten an access.
fn global_shape(kernel: &Kernel) -> (usize, usize) {
    let (mut fields, mut nd) = (0usize, 0usize);
    visit(&kernel.body, &mut |s| {
        let (field, index) = match s {
            Stmt::GlobalLoad { field, index, .. } => (field, index),
            Stmt::GlobalStore { field, index, .. } => (field, index),
            _ => return,
        };
        fields = fields.max(field + 1);
        nd = nd.max(index.len());
    });
    (fields.max(1), nd.max(1))
}

/// One flat global subscript: `plane * plane_stride + i0 * stride0 +
/// ... + i_last`. The strides are `long` function parameters, so the
/// whole expression promotes past `int` before any multiply.
fn gflat(plane: &IExpr, index: &[IExpr], ctx: &Ctx) -> String {
    let mut terms = vec![format!("{} * plane_stride", iexpr_to_cpu(plane, ctx))];
    for (d, e) in index.iter().enumerate() {
        if d + 1 == index.len() {
            terms.push(iexpr_to_cpu(e, ctx));
        } else {
            terms.push(format!("{} * stride{d}", iexpr_to_cpu(e, ctx)));
        }
    }
    terms.join(" + ")
}

/// Emit one per-lane leaf statement wrapped in its lane loop, guarded by
/// `mask` when inside a divergent branch.
fn lane_stmt(out: &mut String, pad: &str, ctx: &Ctx, mask: Option<usize>, line: &str) {
    let _ = writeln!(
        out,
        "{pad}for (int lane = 0; lane < {}; ++lane) {{",
        ctx.tpb
    );
    if let Some(m) = mask {
        let _ = writeln!(out, "{pad}  if (!m{m}[lane]) continue;");
    }
    let _ = writeln!(out, "{pad}  {line}");
    let _ = writeln!(out, "{pad}}}");
}

fn emit_stmts(out: &mut String, stmts: &[Stmt], ctx: &Ctx, depth: usize, mask: Option<usize>) {
    let pad = "  ".repeat(depth);
    for s in stmts {
        match s {
            Stmt::SetVar { var, value } => {
                if ctx.lane_dep.contains(var) {
                    let line = format!("v{var}[lane] = {};", iexpr_to_cpu(value, ctx));
                    lane_stmt(out, &pad, ctx, mask, &line);
                } else {
                    let _ = writeln!(out, "{pad}v{var} = {};", iexpr_to_cpu(value, ctx));
                }
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}for (v{var} = {}; v{var} < {}; v{var} += {step}) {{",
                    iexpr_to_cpu(lo, ctx),
                    iexpr_to_cpu(hi, ctx)
                );
                emit_stmts(out, body, ctx, depth + 1, mask);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::If { cond, then_, else_ } => {
                let divergent = mask.is_some() || cond_mentions_lane(cond, &ctx.lane_dep);
                if !divergent {
                    let _ = writeln!(out, "{pad}if ({}) {{", cond_to_cpu(cond, ctx));
                    emit_stmts(out, then_, ctx, depth + 1, None);
                    if else_.is_empty() {
                        let _ = writeln!(out, "{pad}}}");
                    } else {
                        let _ = writeln!(out, "{pad}}} else {{");
                        emit_stmts(out, else_, ctx, depth + 1, None);
                        let _ = writeln!(out, "{pad}}}");
                    }
                } else {
                    let m = mask.map_or(0, |m| m + 1);
                    let parent = mask.map_or(String::new(), |p| format!("m{p}[lane] && "));
                    let line = format!("m{m}[lane] = {parent}({});", cond_to_cpu(cond, ctx));
                    lane_stmt(out, &pad, ctx, None, &line);
                    emit_stmts(out, then_, ctx, depth, Some(m));
                    if !else_.is_empty() {
                        // parent && !cond  ==  parent && !(parent && cond)
                        let flip = format!("m{m}[lane] = {parent}!m{m}[lane];");
                        lane_stmt(out, &pad, ctx, None, &flip);
                        emit_stmts(out, else_, ctx, depth, Some(m));
                    }
                }
            }
            Stmt::GlobalLoad {
                dst,
                field,
                plane,
                index,
            } => {
                let line = format!("r{dst}[lane] = g{field}[{}];", gflat(plane, index, ctx));
                lane_stmt(out, &pad, ctx, mask, &line);
            }
            Stmt::GlobalStore {
                field,
                plane,
                index,
                src,
            } => {
                let line = format!(
                    "g{field}[{}] = {};",
                    gflat(plane, index, ctx),
                    fexpr_to_cpu(src)
                );
                lane_stmt(out, &pad, ctx, mask, &line);
            }
            Stmt::SharedLoad { dst, buf, index } => {
                let name = &ctx.kernel.shared[*buf].name;
                let line = format!("r{dst}[lane] = {name}{};", idx_to_cpu(index, ctx));
                lane_stmt(out, &pad, ctx, mask, &line);
            }
            Stmt::SharedStore { buf, index, src } => {
                let name = &ctx.kernel.shared[*buf].name;
                let line = format!("{name}{} = {};", idx_to_cpu(index, ctx), fexpr_to_cpu(src));
                lane_stmt(out, &pad, ctx, mask, &line);
            }
            Stmt::Compute { dst, expr } => {
                let line = format!("r{dst}[lane] = {};", fexpr_to_cpu(expr));
                lane_stmt(out, &pad, ctx, mask, &line);
            }
            Stmt::Sync => {
                let _ = writeln!(
                    out,
                    "{pad}/* __syncthreads(): lane loops run in statement lockstep */"
                );
            }
        }
    }
}

/// Renders a full kernel as one vectorized C function executing an
/// entire thread block.
pub fn kernel_to_cpu(kernel: &Kernel) -> String {
    let mut lane_dep = HashSet::new();
    while classify(&kernel.body, &mut lane_dep, false) {}
    let tpb = kernel.threads_per_block();
    let ctx = Ctx {
        kernel,
        lane_dep,
        tpb,
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// block {}x{}x{} = {} lanes, {} bytes block-local",
        kernel.block_dim[0],
        kernel.block_dim[1],
        kernel.block_dim[2],
        tpb,
        kernel.shared_bytes()
    );
    let (fields, nd) = global_shape(kernel);
    let mut params: Vec<String> = (0..fields).map(|f| format!("float *g{f}")).collect();
    params.push("long plane_stride".into());
    params.extend((0..nd.saturating_sub(1)).map(|d| format!("long stride{d}")));
    params.extend((0..kernel.n_params).map(|p| format!("int p{p}")));
    params.push("int blockIdx".into());
    let _ = writeln!(out, "static void {}({}) {{", kernel.name, params.join(", "));
    for b in &kernel.shared {
        let dims: String = b.dims.iter().map(|d| format!("[{d}]")).collect();
        let _ = writeln!(out, "  float {}{dims};", b.name);
    }
    for v in 0..kernel.n_vars {
        if ctx.lane_dep.contains(&v) {
            let _ = writeln!(out, "  int v{v}[{tpb}];");
        } else {
            let _ = writeln!(out, "  int v{v} = 0;");
        }
    }
    for r in 0..kernel.n_regs {
        let _ = writeln!(out, "  float r{r}[{tpb}];");
    }
    for m in 0..mask_depth(&kernel.body, &ctx.lane_dep, false) {
        let _ = writeln!(out, "  int m{m}[{tpb}];");
    }
    emit_stmts(&mut out, &kernel.body, &ctx, 1, None);
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::SharedBuf;

    fn demo_kernel() -> Kernel {
        Kernel {
            name: "demo".into(),
            block_dim: [32, 1, 1],
            shared: vec![SharedBuf {
                name: "s_A".into(),
                dims: vec![2, 10],
            }],
            n_vars: 2,
            n_regs: 2,
            n_params: 1,
            body: vec![
                Stmt::SetVar {
                    var: 0,
                    value: IExpr::BlockIdx.scale(32).add(IExpr::ThreadIdx(0)),
                },
                Stmt::For {
                    var: 1,
                    lo: IExpr::Const(0),
                    hi: IExpr::Const(4),
                    step: 1,
                    body: vec![Stmt::If {
                        cond: Cond::Lt(IExpr::Var(0), IExpr::Const(100)),
                        then_: vec![
                            Stmt::GlobalLoad {
                                dst: 0,
                                field: 0,
                                plane: IExpr::Param(0).modulo(2),
                                index: vec![IExpr::Var(0)],
                            },
                            Stmt::SharedStore {
                                buf: 0,
                                index: vec![IExpr::Const(0), IExpr::ThreadIdx(0).modulo(10)],
                                src: FExpr::Reg(0),
                            },
                        ],
                        else_: vec![Stmt::Compute {
                            dst: 1,
                            expr: FExpr::Const(0.0),
                        }],
                    }],
                },
                Stmt::Sync,
            ],
        }
    }

    #[test]
    fn divergent_ifs_become_masked_lane_loops() {
        let src = kernel_to_cpu(&demo_kernel());
        assert!(
            src.contains("int v0[32];"),
            "v0 is thread-dependent:\n{src}"
        );
        assert!(
            src.contains("int v1 = 0;"),
            "loop var stays uniform:\n{src}"
        );
        assert!(src.contains("for (int lane = 0; lane < 32; ++lane)"));
        assert!(src.contains("m0[lane] = (v0[lane] < 100);"));
        assert!(src.contains("if (!m0[lane]) continue;"));
        assert!(
            src.contains("m0[lane] = !m0[lane];"),
            "else branch flips the mask"
        );
        assert!(src.contains("/* __syncthreads()"));
        assert!(!src.contains("threadIdx"));
        assert!(!src.contains("__shared__"));
    }

    #[test]
    fn uniform_control_flow_stays_scalar() {
        let src = kernel_to_cpu(&demo_kernel());
        assert!(src.contains("for (v1 = 0; v1 < 4; v1 += 1) {"));
    }
}
