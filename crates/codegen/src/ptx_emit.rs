//! Pseudo-PTX emission: the Fig. 2 view of a compiled core tile.
//!
//! The paper's Fig. 2 shows the PTX of one unrolled core-computation block:
//! straight-line `ld.shared.f32` / `add.f32` / `mul.f32` / `st.shared.f32`
//! with no control flow. This module lowers the *full-tile* point code of a
//! kernel to that form, assigning virtual registers and symbolic shared
//! addresses. It demonstrates the same properties the paper highlights:
//! no branches, few loads per compute instruction, and register reuse for
//! values live across unrolled points.

use crate::ir::{FExpr, IExpr, Kernel, Stmt};
use std::collections::HashMap;
use std::fmt::Write;

/// Lowering state: virtual register allocation plus a CSE table keyed by
/// shared address expressions, so values reused across unrolled points
/// stay in registers (the paper: "2 out of the 5 values in flight are
/// being reused in registers").
struct PtxEmitter {
    out: String,
    next_reg: u32,
    /// Map from shared-address key to the register holding its value.
    loaded: HashMap<String, u32>,
    loads: u64,
    stores: u64,
    arith: u64,
}

fn addr_key(buf: usize, index: &[IExpr]) -> String {
    format!("{buf}:{index:?}")
}

/// Symbolic byte offset rendered for the address operand.
fn addr_display(index: &[IExpr]) -> String {
    let parts: Vec<String> = index.iter().map(crate::cuda_emit::iexpr_to_c).collect();
    format!("[{}]", parts.join(", "))
}

impl PtxEmitter {
    fn fresh(&mut self) -> u32 {
        self.next_reg += 1;
        self.next_reg
    }

    fn emit_fexpr(&mut self, e: &FExpr, regs: &HashMap<usize, u32>) -> u32 {
        match e {
            FExpr::Reg(r) => *regs.get(r).unwrap_or(&0),
            FExpr::Const(c) => {
                let d = self.fresh();
                let _ = writeln!(self.out, "mov.f32    %f{d}, 0f{:08X};", c.to_bits());
                d
            }
            FExpr::Add(a, b) => self.bin("add.f32", a, b, regs),
            FExpr::Sub(a, b) => self.bin("sub.f32", a, b, regs),
            FExpr::Mul(a, b) => self.bin("mul.f32", a, b, regs),
            FExpr::Sqrt(a) => {
                let x = self.emit_fexpr(a, regs);
                let d = self.fresh();
                self.arith += 1;
                let _ = writeln!(self.out, "sqrt.rn.f32 %f{d}, %f{x};");
                d
            }
        }
    }

    fn bin(&mut self, op: &str, a: &FExpr, b: &FExpr, regs: &HashMap<usize, u32>) -> u32 {
        let x = self.emit_fexpr(a, regs);
        let y = self.emit_fexpr(b, regs);
        let d = self.fresh();
        self.arith += 1;
        let _ = writeln!(self.out, "{op}    %f{d}, %f{x}, %f{y};");
        d
    }

    fn walk(&mut self, stmts: &[Stmt], regs: &mut HashMap<usize, u32>) {
        for s in stmts {
            match s {
                Stmt::SharedLoad { dst, buf, index } => {
                    let key = addr_key(*buf, index);
                    if let Some(&r) = self.loaded.get(&key) {
                        // Register reuse across unrolled points: no load.
                        regs.insert(*dst, r);
                    } else {
                        let r = self.fresh();
                        self.loads += 1;
                        let _ = writeln!(self.out, "ld.shared.f32 %f{r}, {};", addr_display(index));
                        self.loaded.insert(key, r);
                        regs.insert(*dst, r);
                    }
                }
                Stmt::GlobalLoad { dst, index, .. } => {
                    let r = self.fresh();
                    self.loads += 1;
                    let _ = writeln!(self.out, "ld.global.f32 %f{r}, {};", addr_display(index));
                    regs.insert(*dst, r);
                }
                Stmt::Compute { dst, expr } => {
                    let r = self.emit_fexpr(expr, regs);
                    regs.insert(*dst, r);
                }
                Stmt::SharedStore { buf, index, src } => {
                    let r = self.emit_fexpr(src, regs);
                    self.stores += 1;
                    let _ = writeln!(self.out, "st.shared.f32 {}, %f{r};", addr_display(index));
                    // The stored value now lives at this address.
                    self.loaded.insert(addr_key(*buf, index), r);
                }
                Stmt::GlobalStore { index, src, .. } => {
                    let r = self.emit_fexpr(src, regs);
                    self.stores += 1;
                    let _ = writeln!(self.out, "st.global.f32 {}, %f{r};", addr_display(index));
                }
                // Core-tile emission covers straight-line point code only.
                Stmt::Sync | Stmt::SetVar { .. } => {}
                Stmt::For { body, .. } => self.walk(body, regs),
                Stmt::If { then_, .. } => self.walk(then_, regs),
            }
        }
    }
}

/// Statistics of an emitted core block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PtxStats {
    /// Load instructions emitted.
    pub loads: u64,
    /// Store instructions emitted.
    pub stores: u64,
    /// Arithmetic instructions emitted.
    pub arith: u64,
}

/// How many unrolled point computations the driver's PTX artifact shows
/// per kernel. Four points is enough to exhibit every property Fig. 2
/// highlights (straight-line code, register reuse across points, the
/// load/arith ratio) while keeping the artifact readable; callers wanting
/// a different window pass their own `max_points` to [`core_tile_ptx`].
pub const DEFAULT_CORE_TILE_POINTS: usize = 4;

/// Extracts the full-tile branch of a hybrid kernel and lowers its first
/// `max_points` unrolled point computations to pseudo-PTX. Returns the
/// text and its instruction statistics.
pub fn core_tile_ptx(kernel: &Kernel, max_points: usize) -> (String, PtxStats) {
    // The full-tile code is the `then` branch of the If whose else-branch
    // is non-empty and whose taken branch contains point computations
    // (the full/partial separation If; the inter-tile-reuse If only moves
    // data and contains no Compute).
    fn has_compute(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Compute { .. } => true,
            Stmt::If { then_, else_, .. } => has_compute(then_) || has_compute(else_),
            Stmt::For { body, .. } => has_compute(body),
            _ => false,
        })
    }
    fn find_full(stmts: &[Stmt]) -> Option<&[Stmt]> {
        for s in stmts {
            match s {
                Stmt::If { then_, else_, .. } => {
                    if !else_.is_empty() && has_compute(then_) {
                        return Some(then_);
                    }
                    if let Some(f) = find_full(then_).or_else(|| find_full(else_)) {
                        return Some(f);
                    }
                }
                Stmt::For { body, .. } => {
                    if let Some(f) = find_full(body) {
                        return Some(f);
                    }
                }
                _ => {}
            }
        }
        None
    }
    let full = find_full(&kernel.body).unwrap_or(&kernel.body);
    // Take a prefix of point computations: count Compute statements.
    let mut taken = Vec::new();
    let mut points = 0;
    for s in full {
        if matches!(s, Stmt::Compute { .. }) {
            points += 1;
        }
        taken.push(s.clone());
        if points >= max_points {
            break;
        }
    }
    let mut em = PtxEmitter {
        out: String::new(),
        next_reg: 300,
        loaded: HashMap::new(),
        loads: 0,
        stores: 0,
        arith: 0,
    };
    let mut regs = HashMap::new();
    em.walk(&taken, &mut regs);
    (
        em.out,
        PtxStats {
            loads: em.loads,
            stores: em.stores,
            arith: em.arith,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid_gen::generate_hybrid;
    use crate::options::CodegenOptions;
    use hybrid_tiling::TileParams;
    use stencil::gallery;

    #[test]
    fn jacobi_core_tile_is_branch_free_and_reuses_registers() {
        let p = gallery::jacobi2d();
        let plan = generate_hybrid(
            &p,
            &TileParams::new(2, &[3, 32]),
            &[64, 64],
            8,
            CodegenOptions::best(),
        )
        .unwrap();
        let (ptx, stats) = core_tile_ptx(&plan.kernels[1], 3);
        assert!(ptx.contains("ld.shared.f32"));
        assert!(ptx.contains("st.shared.f32"));
        assert!(ptx.contains("add.f32"));
        assert!(ptx.contains("mul.f32"));
        assert!(!ptx.contains("bra"), "no branches in core tile");
        // Register reuse: 3 unrolled 5-point stencils would naively load
        // 15 values; neighbors along the unrolled direction are shared.
        assert!(
            stats.loads < 15,
            "expected register reuse, got {} loads",
            stats.loads
        );
    }
}
