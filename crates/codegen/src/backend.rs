//! The emission backend abstraction: one kernel IR, thin per-target
//! printers behind a common [`Backend`] trait.
//!
//! The hybrid hexagonal/classical schedules of §3–§4 are
//! target-independent; only the final printing step is CUDA-shaped.
//! This module makes that step pluggable. Each backend is a stateless
//! singleton ([`BackendKind::backend`] hands out `&'static dyn
//! Backend`) that knows how to
//!
//! * print one [`Kernel`] ([`Backend::emit_kernel`]) and, by default,
//!   a whole [`LaunchPlan`] as prologue + per-kernel sources
//!   ([`Backend::emit_plan`]);
//! * optionally print a secondary artifact ([`Backend::emit_aux`] —
//!   the CUDA backend's pseudo-PTX view of Fig. 2);
//! * name its artifacts ([`Backend::source_extension`] /
//!   [`Backend::aux_extension`]);
//! * describe what it can lower ([`Backend::caps`]) and reject what it
//!   cannot with a typed [`CodegenError::UnsupportedStrategy`]
//!   ([`Backend::check_options`]) instead of emitting wrong code.
//!
//! # Adding a fifth backend
//!
//! 1. Write the printer module (see `wgsl_emit` for a non-C surface,
//!    `c_like` + a [`crate::c_like::CDialect`] if the target is
//!    C-family) with a `kernel_to_<target>(&Kernel) -> String` entry
//!    point. Emission must be a pure function of the kernel — no
//!    clocks, no randomness — so the driver's content-addressed cache
//!    and the golden-file suite stay byte-deterministic.
//! 2. Add a `BackendKind` variant, extend [`BackendKind::ALL`], and
//!    give it a wire name in [`BackendKind::name`] (CLI `--backend`,
//!    the serve-protocol `"backend"` field, cache entries and metric
//!    labels all use that string; `parse` inverts it for free).
//! 3. Implement [`Backend`] as a unit struct: pick a
//!    [`source_extension`](Backend::source_extension), declare honest
//!    [`caps`](Backend::caps) (which [`SmemStrategy`] rows of Table 4
//!    lower, the SIMT/SIMD vector width), and make
//!    [`default_options`](Backend::default_options) the best ladder
//!    step the target supports.
//! 4. Wire the singleton into [`BackendKind::backend`] and add golden
//!    snapshots under `crates/codegen/tests/golden/` via the existing
//!    `UPDATE_GOLDEN=1` flow. The upper layers — driver fingerprints,
//!    `hybridc --backend`, serve, fleet routing, per-backend metrics —
//!    key on `BackendKind` and pick the new target up automatically.

use crate::c_like::{kernel_to_c, HIP_DIALECT};
use crate::cpu_emit::{kernel_to_cpu, CPU_PROLOGUE};
use crate::cuda_emit::kernel_to_cuda;
use crate::hybrid_gen::CodegenError;
use crate::ir::{Kernel, LaunchPlan};
use crate::options::{CodegenOptions, SmemStrategy};
use crate::ptx_emit::{core_tile_ptx, DEFAULT_CORE_TILE_POINTS};
use crate::wgsl_emit::kernel_to_wgsl;

/// Identifier for one emission backend — the value that travels through
/// CLI flags, serve requests, cache entries and metric labels.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum BackendKind {
    /// CUDA-C pseudo-source plus the pseudo-PTX core-tile view.
    #[default]
    Cuda,
    /// WebGPU shading language (workgroup memory, `@builtin` ids).
    Wgsl,
    /// HIP C++ for AMD GPUs (CUDA-shaped grammar, 64-wide wavefronts).
    Hip,
    /// Whole-block vectorized portable C; executable via the `gpusim`
    /// bytecode path.
    Cpu,
}

impl BackendKind {
    /// Every backend, in stable (metric-label) order.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Cuda,
        BackendKind::Wgsl,
        BackendKind::Hip,
        BackendKind::Cpu,
    ];

    /// Stable wire/CLI name (`parse` inverts it).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Cuda => "cuda",
            BackendKind::Wgsl => "wgsl",
            BackendKind::Hip => "hip",
            BackendKind::Cpu => "cpu",
        }
    }

    /// Parses a wire/CLI name back into a kind.
    pub fn parse(s: &str) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|b| b.name() == s)
    }

    /// Position in [`BackendKind::ALL`] — the index for per-backend
    /// counter arrays.
    pub fn index(self) -> usize {
        BackendKind::ALL.iter().position(|b| *b == self).unwrap()
    }

    /// The backend singleton implementing this kind.
    pub fn backend(self) -> &'static dyn Backend {
        match self {
            BackendKind::Cuda => &CudaBackend,
            BackendKind::Wgsl => &WgslBackend,
            BackendKind::Hip => &HipBackend,
            BackendKind::Cpu => &CpuBackend,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a backend can lower.
pub struct BackendCaps {
    /// The shared-memory ladder rows (Table 4) the target supports.
    pub smem: &'static [SmemStrategy],
    /// Lanes executing in lockstep on the target (CUDA warp 32, AMD
    /// wavefront 64, one WebGPU invocation, 8-wide CPU SIMD).
    pub vector_width: usize,
}

impl BackendCaps {
    /// True if the backend can lower `smem`.
    pub fn supports(&self, smem: SmemStrategy) -> bool {
        self.smem.contains(&smem)
    }
}

/// One emission target over the kernel IR.
pub trait Backend: Sync {
    /// The kind this backend implements.
    fn kind(&self) -> BackendKind;

    /// Wire/CLI name — same as `self.kind().name()`.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// File extension of the primary source artifact (no leading dot).
    fn source_extension(&self) -> &'static str;

    /// File extension of the secondary artifact, if the backend emits
    /// one (the CUDA backend's pseudo-PTX).
    fn aux_extension(&self) -> Option<&'static str> {
        None
    }

    /// Capability descriptor.
    fn caps(&self) -> BackendCaps;

    /// The best [`CodegenOptions`] this backend can lower — ladder step
    /// (f) clamped to the supported strategies.
    fn default_options(&self) -> CodegenOptions {
        let best = CodegenOptions::best();
        if self.caps().supports(best.smem) {
            best
        } else {
            // Walk the ladder from the top; every backend supports at
            // least step (a).
            let smem = SmemStrategy::ALL
                .into_iter()
                .rev()
                .find(|s| self.caps().supports(*s))
                .unwrap_or(SmemStrategy::GlobalOnly);
            CodegenOptions { smem, ..best }
        }
    }

    /// Rejects options the backend cannot lower with a typed error.
    fn check_options(&self, opts: &CodegenOptions) -> Result<(), CodegenError> {
        if self.caps().supports(opts.smem) {
            Ok(())
        } else {
            Err(CodegenError::UnsupportedStrategy {
                backend: self.name(),
                smem: opts.smem,
            })
        }
    }

    /// Prologue emitted once per plan, ahead of the kernels.
    fn plan_prologue(&self) -> &'static str {
        ""
    }

    /// Prints one kernel in the target language.
    fn emit_kernel(&self, kernel: &Kernel) -> String;

    /// Prints a whole plan: prologue, then each kernel followed by a
    /// blank line (the historical CUDA layout all goldens pin).
    fn emit_plan(&self, plan: &LaunchPlan) -> String {
        let mut out = String::from(self.plan_prologue());
        for kernel in &plan.kernels {
            out.push_str(&self.emit_kernel(kernel));
            out.push('\n');
        }
        out
    }

    /// Prints the secondary artifact for a plan, if any.
    fn emit_aux(&self, _plan: &LaunchPlan) -> Option<String> {
        None
    }
}

/// The historical target: CUDA-C pseudo-source plus the pseudo-PTX
/// core-tile artifact. Output is byte-identical to the pre-trait
/// emitter (the `tests/golden/*.cu` / `*.ptx` files prove it).
pub struct CudaBackend;

impl Backend for CudaBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cuda
    }

    fn source_extension(&self) -> &'static str {
        "cu"
    }

    fn aux_extension(&self) -> Option<&'static str> {
        Some("ptx")
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            smem: &SmemStrategy::ALL,
            vector_width: 32,
        }
    }

    fn emit_kernel(&self, kernel: &Kernel) -> String {
        kernel_to_cuda(kernel)
    }

    fn emit_aux(&self, plan: &LaunchPlan) -> Option<String> {
        let mut ptx = String::new();
        for kernel in &plan.kernels {
            let (text, stats) = core_tile_ptx(kernel, DEFAULT_CORE_TILE_POINTS);
            ptx.push_str(&format!(
                "// kernel {} — core tile, first {DEFAULT_CORE_TILE_POINTS} points: \
                 {} loads, {} stores, {} arith\n",
                kernel.name, stats.loads, stats.stores, stats.arith
            ));
            ptx.push_str(&text);
            ptx.push('\n');
        }
        Some(ptx)
    }
}

/// WebGPU shading language. WGSL workgroup arrays are statically sized
/// and statically addressed per the shader module, which rules out the
/// dynamic-placement move phase of ladder step (f) — `ReuseDynamic` is
/// rejected and the default clamps to `ReuseStatic` (step (e)).
pub struct WgslBackend;

/// The strategies WGSL can lower: everything except dynamic reuse.
const WGSL_SMEM: [SmemStrategy; 4] = [
    SmemStrategy::GlobalOnly,
    SmemStrategy::CopyInOut,
    SmemStrategy::InterleavedCopyOut,
    SmemStrategy::ReuseStatic,
];

impl Backend for WgslBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Wgsl
    }

    fn source_extension(&self) -> &'static str {
        "wgsl"
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            smem: &WGSL_SMEM,
            vector_width: 1,
        }
    }

    fn emit_kernel(&self, kernel: &Kernel) -> String {
        kernel_to_wgsl(kernel)
    }
}

/// HIP C++ for AMD GPUs: the CUDA grammar with the HIP runtime header
/// and `__launch_bounds__` (occupancy on 64-wide wavefronts is
/// sensitive to it).
pub struct HipBackend;

impl Backend for HipBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Hip
    }

    fn source_extension(&self) -> &'static str {
        "hip.cpp"
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            smem: &SmemStrategy::ALL,
            vector_width: 64,
        }
    }

    fn plan_prologue(&self) -> &'static str {
        HIP_DIALECT.prologue
    }

    fn emit_kernel(&self, kernel: &Kernel) -> String {
        kernel_to_c(kernel, &HIP_DIALECT)
    }
}

/// Whole-block vectorized CPU target. The printed `.cpu.c` source is
/// the documentation artifact; the executable twin is the `gpusim`
/// bytecode path, which the driver verifies bit-exact against the
/// sequential interpreter oracle.
pub struct CpuBackend;

impl Backend for CpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cpu
    }

    fn source_extension(&self) -> &'static str {
        "cpu.c"
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            smem: &SmemStrategy::ALL,
            vector_width: 8,
        }
    }

    fn plan_prologue(&self) -> &'static str {
        CPU_PROLOGUE
    }

    fn emit_kernel(&self, kernel: &Kernel) -> String {
        kernel_to_cpu(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_index_is_stable() {
        for (i, kind) in BackendKind::ALL.into_iter().enumerate() {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.index(), i);
            assert_eq!(kind.backend().kind(), kind);
            assert_eq!(kind.backend().name(), kind.name());
        }
        assert_eq!(BackendKind::parse("metal"), None);
        assert_eq!(BackendKind::default(), BackendKind::Cuda);
    }

    #[test]
    fn capability_matrix_matches_check_options() {
        for kind in BackendKind::ALL {
            let b = kind.backend();
            for smem in SmemStrategy::ALL {
                let opts = CodegenOptions {
                    smem,
                    ..CodegenOptions::best()
                };
                let res = b.check_options(&opts);
                if b.caps().supports(smem) {
                    assert_eq!(res, Ok(()), "{kind} should accept {smem:?}");
                } else {
                    assert_eq!(
                        res,
                        Err(CodegenError::UnsupportedStrategy {
                            backend: kind.name(),
                            smem,
                        }),
                        "{kind} should reject {smem:?} with a typed error"
                    );
                }
            }
        }
    }

    #[test]
    fn only_wgsl_rejects_and_only_dynamic_reuse() {
        for kind in BackendKind::ALL {
            let b = kind.backend();
            for smem in SmemStrategy::ALL {
                let rejected = !b.caps().supports(smem);
                assert_eq!(
                    rejected,
                    kind == BackendKind::Wgsl && smem == SmemStrategy::ReuseDynamic,
                    "capability matrix drifted: {kind} / {smem:?}"
                );
            }
        }
    }

    #[test]
    fn default_options_always_pass_the_backend_check() {
        for kind in BackendKind::ALL {
            let b = kind.backend();
            assert_eq!(b.check_options(&b.default_options()), Ok(()));
        }
        // WGSL clamps ladder step (f) down to (e); the rest keep best().
        assert_eq!(
            BackendKind::Wgsl.backend().default_options().smem,
            SmemStrategy::ReuseStatic
        );
        assert_eq!(
            BackendKind::Cuda.backend().default_options(),
            CodegenOptions::best()
        );
    }

    #[test]
    fn extensions_are_distinct() {
        let exts: Vec<&str> = BackendKind::ALL
            .iter()
            .map(|k| k.backend().source_extension())
            .collect();
        for (i, a) in exts.iter().enumerate() {
            for b in &exts[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(BackendKind::Cuda.backend().aux_extension(), Some("ptx"));
        assert_eq!(BackendKind::Wgsl.backend().aux_extension(), None);
    }
}
