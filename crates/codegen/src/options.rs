//! Code-generation options: the shared-memory strategy ladder of Table 4.

/// Shared-memory management strategy (§4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SmemStrategy {
    /// (a) No shared memory: all accesses go to global memory (hardware
    /// caches provide whatever reuse they can).
    GlobalOnly,
    /// (b) Explicit shared memory with separate copy-in and copy-out
    /// phases per tile.
    CopyInOut,
    /// (c) Copy-in plus *interleaved* copy-out: results are stored to
    /// global memory the moment they are computed (§4.2.1).
    InterleavedCopyOut,
    /// (e) Inter-tile reuse with a *static* global→shared mapping: shared
    /// addresses are the global coordinates modulo the buffer extent, so
    /// overlapping values need no copying but accesses may bank-conflict
    /// (§4.2.2).
    ReuseStatic,
    /// (f) Inter-tile reuse with *dynamic* placement: dense addressing plus
    /// an explicit move phase shifting the overlap between consecutive
    /// tiles (§4.2.2).
    ReuseDynamic,
}

impl SmemStrategy {
    /// Every strategy, in ladder order.
    pub const ALL: [SmemStrategy; 5] = [
        SmemStrategy::GlobalOnly,
        SmemStrategy::CopyInOut,
        SmemStrategy::InterleavedCopyOut,
        SmemStrategy::ReuseStatic,
        SmemStrategy::ReuseDynamic,
    ];

    /// Stable wire/CLI name (`parse` inverts it).
    pub fn name(self) -> &'static str {
        match self {
            SmemStrategy::GlobalOnly => "global_only",
            SmemStrategy::CopyInOut => "copy_in_out",
            SmemStrategy::InterleavedCopyOut => "interleaved_copy_out",
            SmemStrategy::ReuseStatic => "reuse_static",
            SmemStrategy::ReuseDynamic => "reuse_dynamic",
        }
    }

    /// Parses a wire/CLI name back into a strategy.
    pub fn parse(s: &str) -> Option<SmemStrategy> {
        SmemStrategy::ALL.into_iter().find(|m| m.name() == s)
    }

    /// True if the strategy stages data through shared memory.
    pub fn uses_shared(self) -> bool {
        !matches!(self, SmemStrategy::GlobalOnly)
    }

    /// True if results are written to global memory as they are computed.
    pub fn interleaved_copy_out(self) -> bool {
        !matches!(self, SmemStrategy::GlobalOnly | SmemStrategy::CopyInOut)
    }

    /// True if values are reused between consecutive classical tiles.
    pub fn inter_tile_reuse(self) -> bool {
        matches!(self, SmemStrategy::ReuseStatic | SmemStrategy::ReuseDynamic)
    }
}

/// Full code-generation configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CodegenOptions {
    /// Shared-memory strategy.
    pub smem: SmemStrategy,
    /// Align the copy-in window start to 128-byte boundaries by widening
    /// the left halo pad (§4.2.3, ladder step (d)).
    pub aligned_loads: bool,
    /// Unroll the intra-tile `b` loop (the `s0` hexagon rows); the time
    /// loop over `a` is always fully unrolled (§4.3.2).
    pub unroll: bool,
}

impl CodegenOptions {
    /// The (a)–(f) ladder of Table 4, with its row labels.
    pub fn ladder() -> Vec<(&'static str, CodegenOptions)> {
        vec![
            (
                "(a) no shared memory",
                CodegenOptions {
                    smem: SmemStrategy::GlobalOnly,
                    aligned_loads: false,
                    unroll: true,
                },
            ),
            (
                "(b) shared memory",
                CodegenOptions {
                    smem: SmemStrategy::CopyInOut,
                    aligned_loads: false,
                    unroll: true,
                },
            ),
            (
                "(c) (b) + interleave copy-out",
                CodegenOptions {
                    smem: SmemStrategy::InterleavedCopyOut,
                    aligned_loads: false,
                    unroll: true,
                },
            ),
            (
                "(d) (c) + align loads",
                CodegenOptions {
                    smem: SmemStrategy::InterleavedCopyOut,
                    aligned_loads: true,
                    unroll: true,
                },
            ),
            (
                "(e) (d) + value reuse (static)",
                CodegenOptions {
                    smem: SmemStrategy::ReuseStatic,
                    aligned_loads: true,
                    unroll: true,
                },
            ),
            (
                "(f) (d) + value reuse (dynamic)",
                CodegenOptions {
                    smem: SmemStrategy::ReuseDynamic,
                    aligned_loads: true,
                    unroll: true,
                },
            ),
        ]
    }

    /// The best configuration (ladder step (f)) used for Tables 1 and 2.
    pub fn best() -> CodegenOptions {
        CodegenOptions {
            smem: SmemStrategy::ReuseDynamic,
            aligned_loads: true,
            unroll: true,
        }
    }
}

impl Default for CodegenOptions {
    fn default() -> CodegenOptions {
        CodegenOptions::best()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_has_six_steps() {
        let l = CodegenOptions::ladder();
        assert_eq!(l.len(), 6);
        assert_eq!(l[0].1.smem, SmemStrategy::GlobalOnly);
        assert!(l[5].1.smem.inter_tile_reuse());
    }

    #[test]
    fn names_round_trip() {
        for s in SmemStrategy::ALL {
            assert_eq!(SmemStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(SmemStrategy::parse("texture"), None);
    }

    #[test]
    fn strategy_predicates() {
        assert!(!SmemStrategy::GlobalOnly.uses_shared());
        assert!(SmemStrategy::CopyInOut.uses_shared());
        assert!(!SmemStrategy::CopyInOut.interleaved_copy_out());
        assert!(SmemStrategy::InterleavedCopyOut.interleaved_copy_out());
        assert!(SmemStrategy::ReuseStatic.inter_tile_reuse());
    }
}
