//! The kernel IR: a small structured language mirroring the CUDA kernels
//! PPCG emits, interpreted warp-synchronously by `gpusim`.
//!
//! Design notes:
//!
//! * Integer (address/index) expressions [`IExpr`] and `f32` value
//!   expressions [`FExpr`] are separate types — addresses never depend on
//!   floating-point data, exactly as in the generated CUDA.
//! * Global memory is addressed as `(field, plane, spatial index)`: each
//!   stencil field is a ring of `max_dt + 1` time planes (the
//!   generalization of the `A[(t+1)%2]` double buffer of Fig. 1).
//! * Shared memory is a set of per-kernel buffers with static extents.
//! * Loops have uniform (thread-independent) bounds; thread divergence can
//!   only arise from `If` with lane-dependent conditions, which the
//!   simulator masks and counts — mirroring the paper's divergence
//!   argument.

use std::fmt;

/// Index of an integer scalar slot (loop variables, precomputed bases).
pub type VarId = usize;
/// Index of an `f32` register slot.
pub type RegId = usize;

/// Integer expression over scalars, thread/block identifiers and launch
/// parameters.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IExpr {
    /// Integer literal.
    Const(i64),
    /// Scalar variable (loop counter or `SetVar` result).
    Var(VarId),
    /// Per-launch scalar parameter (e.g. the time-tile index `T`).
    Param(usize),
    /// Thread index component: 0 = x (innermost/coalesced), 1 = y, 2 = z.
    ThreadIdx(u8),
    /// One-dimensional block index within the launch.
    BlockIdx,
    /// Sum.
    Add(Box<IExpr>, Box<IExpr>),
    /// Difference.
    Sub(Box<IExpr>, Box<IExpr>),
    /// Product.
    Mul(Box<IExpr>, Box<IExpr>),
    /// Floor division by a positive constant.
    FloorDiv(Box<IExpr>, i64),
    /// Euclidean remainder by a positive constant.
    Mod(Box<IExpr>, i64),
    /// Minimum.
    Min(Box<IExpr>, Box<IExpr>),
    /// Maximum.
    Max(Box<IExpr>, Box<IExpr>),
}

impl IExpr {
    /// Convenience: `self + other`, folding constants so that equal
    /// addresses have equal syntax (the pseudo-PTX emitter uses syntactic
    /// equality for its register-reuse CSE).
    // Deliberately a by-value builder, not `std::ops::Add`: the operands
    // are consumed and the result is a folded tree, not field-wise addition.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: IExpr) -> IExpr {
        match (self, other) {
            (IExpr::Const(a), IExpr::Const(b)) => IExpr::Const(a + b),
            (IExpr::Const(0), e) | (e, IExpr::Const(0)) => e,
            // Normalize (e + c1) + c2 -> e + (c1 + c2).
            (IExpr::Add(a, b), IExpr::Const(c)) => {
                if let IExpr::Const(b) = *b {
                    IExpr::Add(a, Box::new(IExpr::Const(b + c)))
                } else {
                    IExpr::Add(Box::new(IExpr::Add(a, b)), Box::new(IExpr::Const(c)))
                }
            }
            (a, b) => IExpr::Add(Box::new(a), Box::new(b)),
        }
    }

    /// Convenience: `self - other` (constant-folding).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: IExpr) -> IExpr {
        match (self, other) {
            (a, IExpr::Const(c)) => a.offset(-c),
            (a, b) => IExpr::Sub(Box::new(a), Box::new(b)),
        }
    }

    /// Convenience: `self * k` (constant-folding).
    pub fn scale(self, k: i64) -> IExpr {
        match (self, k) {
            (_, 0) => IExpr::Const(0),
            (e, 1) => e,
            (IExpr::Const(c), k) => IExpr::Const(c * k),
            (e, k) => IExpr::Mul(Box::new(e), Box::new(IExpr::Const(k))),
        }
    }

    /// Convenience: `self + k` (constant-folding).
    pub fn offset(self, k: i64) -> IExpr {
        if k == 0 {
            self
        } else {
            self.add(IExpr::Const(k))
        }
    }

    /// Convenience: euclidean `self mod k` (constant-folding).
    pub fn modulo(self, k: i64) -> IExpr {
        match self {
            IExpr::Const(c) => IExpr::Const(c.rem_euclid(k)),
            e => IExpr::Mod(Box::new(e), k),
        }
    }

    /// Convenience: `floor(self / k)` (constant-folding).
    pub fn fdiv(self, k: i64) -> IExpr {
        match self {
            IExpr::Const(c) => IExpr::Const(c.div_euclid(k)),
            e => IExpr::FloorDiv(Box::new(e), k),
        }
    }
}

/// Boolean condition over integer expressions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Cond {
    /// Always true.
    True,
    /// `a <= b`.
    Le(IExpr, IExpr),
    /// `a < b`.
    Lt(IExpr, IExpr),
    /// `a == b`.
    Eq(IExpr, IExpr),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

impl Cond {
    /// Conjunction helper.
    pub fn and(self, other: Cond) -> Cond {
        match (self, other) {
            (Cond::True, c) | (c, Cond::True) => c,
            (a, b) => Cond::And(Box::new(a), Box::new(b)),
        }
    }

    /// `lo <= e <= hi` (inclusive).
    pub fn between(e: &IExpr, lo: IExpr, hi: IExpr) -> Cond {
        Cond::Le(lo, e.clone()).and(Cond::Le(e.clone(), hi))
    }
}

/// `f32` value expression over registers and literals.
#[derive(Clone, PartialEq, Debug)]
pub enum FExpr {
    /// Register read.
    Reg(RegId),
    /// `f32` literal.
    Const(f32),
    /// Addition.
    Add(Box<FExpr>, Box<FExpr>),
    /// Subtraction.
    Sub(Box<FExpr>, Box<FExpr>),
    /// Multiplication.
    Mul(Box<FExpr>, Box<FExpr>),
    /// Square root.
    Sqrt(Box<FExpr>),
}

impl FExpr {
    /// Number of arithmetic operations (`sqrt` counts 1 instruction; FLOP
    /// accounting weights it separately).
    pub fn op_count(&self) -> u64 {
        match self {
            FExpr::Reg(_) | FExpr::Const(_) => 0,
            FExpr::Add(a, b) | FExpr::Sub(a, b) | FExpr::Mul(a, b) => {
                1 + a.op_count() + b.op_count()
            }
            FExpr::Sqrt(a) => 1 + a.op_count(),
        }
    }
}

/// A statement of the kernel body.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// Assigns an integer scalar.
    SetVar {
        /// Destination scalar.
        var: VarId,
        /// Value.
        value: IExpr,
    },
    /// `for (var = lo; var < hi; var += step)` with uniform bounds.
    For {
        /// Loop variable.
        var: VarId,
        /// Inclusive lower bound.
        lo: IExpr,
        /// Exclusive upper bound.
        hi: IExpr,
        /// Positive step.
        step: i64,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Conditional; lane-dependent conditions cause (counted) divergence.
    If {
        /// Guard condition.
        cond: Cond,
        /// Taken branch.
        then_: Vec<Stmt>,
        /// Else branch (often empty).
        else_: Vec<Stmt>,
    },
    /// `dst = global[field][plane][index...]`.
    GlobalLoad {
        /// Destination register.
        dst: RegId,
        /// Field identifier.
        field: usize,
        /// Time-plane ring index.
        plane: IExpr,
        /// Spatial index per dimension.
        index: Vec<IExpr>,
    },
    /// `global[field][plane][index...] = src`.
    GlobalStore {
        /// Field identifier.
        field: usize,
        /// Time-plane ring index.
        plane: IExpr,
        /// Spatial index per dimension.
        index: Vec<IExpr>,
        /// Stored value.
        src: FExpr,
    },
    /// `dst = shared[buf][index...]`.
    SharedLoad {
        /// Destination register.
        dst: RegId,
        /// Shared buffer id.
        buf: usize,
        /// Index per buffer dimension.
        index: Vec<IExpr>,
    },
    /// `shared[buf][index...] = src`.
    SharedStore {
        /// Shared buffer id.
        buf: usize,
        /// Index per buffer dimension.
        index: Vec<IExpr>,
        /// Stored value.
        src: FExpr,
    },
    /// Pure arithmetic: `dst = expr`.
    Compute {
        /// Destination register.
        dst: RegId,
        /// Value expression.
        expr: FExpr,
    },
    /// `__syncthreads()`.
    Sync,
}

/// A statically sized shared-memory buffer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SharedBuf {
    /// Buffer name (for emitted code).
    pub name: String,
    /// Extents, row-major (last dimension contiguous).
    pub dims: Vec<usize>,
}

impl SharedBuf {
    /// Total elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True if the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes occupied (4-byte floats).
    pub fn bytes(&self) -> usize {
        self.len() * 4
    }
}

/// A complete kernel: block shape, shared buffers, register/scalar counts
/// and the body.
#[derive(Clone, PartialEq, Debug)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// Thread-block shape `[x, y, z]`; x is the coalescing dimension.
    pub block_dim: [usize; 3],
    /// Shared-memory buffers.
    pub shared: Vec<SharedBuf>,
    /// Number of integer scalar slots.
    pub n_vars: usize,
    /// Number of `f32` register slots.
    pub n_regs: usize,
    /// Number of per-launch parameters.
    pub n_params: usize,
    /// Kernel body.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Threads per block.
    pub fn threads_per_block(&self) -> usize {
        self.block_dim.iter().product()
    }

    /// Shared-memory bytes per block.
    pub fn shared_bytes(&self) -> usize {
        self.shared.iter().map(SharedBuf::bytes).sum()
    }
}

/// One kernel launch: the kernel, per-launch parameter values, and the
/// number of blocks (block `i` sees `BlockIdx = i`).
#[derive(Clone, Debug)]
pub struct Launch {
    /// Index into [`LaunchPlan::kernels`].
    pub kernel: usize,
    /// Values for `IExpr::Param(_)`.
    pub params: Vec<i64>,
    /// Grid size (1-D).
    pub blocks: usize,
}

/// A full program execution plan: kernels plus the host-side launch
/// sequence (the `T`/phase loop of §4.1 lives here).
#[derive(Clone, Debug)]
pub struct LaunchPlan {
    /// The kernels referenced by the launches.
    pub kernels: Vec<Kernel>,
    /// Launches in execution order; consecutive launches are implicitly
    /// ordered (as CUDA streams order kernels).
    pub launches: Vec<Launch>,
    /// Human-readable description of the strategy that produced the plan.
    pub description: String,
}

impl fmt::Display for LaunchPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} kernels, {} launches",
            self.description,
            self.kernels.len(),
            self.launches.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iexpr_builders_compose() {
        let e = IExpr::ThreadIdx(0).add(IExpr::BlockIdx.scale(32)).offset(4);
        // Structure check via Debug formatting.
        let s = format!("{e:?}");
        assert!(s.contains("ThreadIdx"));
        assert!(s.contains("BlockIdx"));
    }

    #[test]
    fn fexpr_op_count() {
        // (a + b) * c has 2 ops.
        let e = FExpr::Mul(
            Box::new(FExpr::Add(Box::new(FExpr::Reg(0)), Box::new(FExpr::Reg(1)))),
            Box::new(FExpr::Reg(2)),
        );
        assert_eq!(e.op_count(), 2);
    }

    #[test]
    fn cond_between_builds_conjunction() {
        let c = Cond::between(&IExpr::Var(0), IExpr::Const(0), IExpr::Const(9));
        assert!(matches!(c, Cond::And(_, _)));
    }

    #[test]
    fn shared_buf_bytes() {
        let b = SharedBuf {
            name: "sA".into(),
            dims: vec![2, 8, 36],
        };
        assert_eq!(b.len(), 576);
        assert_eq!(b.bytes(), 2304);
    }

    #[test]
    fn kernel_accounting() {
        let k = Kernel {
            name: "k".into(),
            block_dim: [32, 4, 1],
            shared: vec![SharedBuf {
                name: "s".into(),
                dims: vec![16, 34],
            }],
            n_vars: 2,
            n_regs: 4,
            n_params: 1,
            body: vec![],
        };
        assert_eq!(k.threads_per_block(), 128);
        assert_eq!(k.shared_bytes(), 16 * 34 * 4);
    }
}
