//! WGSL compute-shader pretty printer for kernel IR.
//!
//! Each kernel renders as one self-contained WGSL module — the wgpu
//! execution model builds one compute pipeline per kernel, so a
//! multi-kernel plan is a sequence of modules, not one translation
//! unit. Targeting WGSL replaces the CUDA surface piece by piece:
//!
//! * `__shared__` buffers become `var<workgroup>` arrays (statically
//!   sized, matching [`crate::ir::SharedBuf`]);
//! * `threadIdx` / `blockIdx` become the `local_invocation_id` /
//!   `workgroup_id` `@builtin` inputs;
//! * `__syncthreads()` becomes `workgroupBarrier()`;
//! * global fields become `var<storage, read_write>` bindings. WGSL
//!   storage buffers are flat, so the `(plane, spatial...)` subscripts
//!   of the CUDA pseudo-source are linearized through a `gidx` helper
//!   whose strides are pipeline-overridable constants — one module
//!   serves any grid extent;
//! * per-launch parameters arrive through a uniform `Params` struct.

use crate::ir::{Cond, FExpr, IExpr, Kernel, Stmt};
use std::fmt::Write;

/// Renders an integer expression as WGSL (`i32` arithmetic).
pub fn iexpr_to_wgsl(e: &IExpr) -> String {
    match e {
        IExpr::Const(c) => format!("{c}"),
        IExpr::Var(v) => format!("v{v}"),
        IExpr::Param(p) => format!("P.p{p}"),
        IExpr::ThreadIdx(0) => "i32(lid.x)".into(),
        IExpr::ThreadIdx(1) => "i32(lid.y)".into(),
        IExpr::ThreadIdx(_) => "i32(lid.z)".into(),
        IExpr::BlockIdx => "i32(wid.x)".into(),
        IExpr::Add(a, b) => format!("({} + {})", iexpr_to_wgsl(a), iexpr_to_wgsl(b)),
        IExpr::Sub(a, b) => format!("({} - {})", iexpr_to_wgsl(a), iexpr_to_wgsl(b)),
        IExpr::Mul(a, b) => format!("({} * {})", iexpr_to_wgsl(a), iexpr_to_wgsl(b)),
        IExpr::FloorDiv(a, k) => format!("floord({}, {k})", iexpr_to_wgsl(a)),
        IExpr::Mod(a, k) => format!("pmod({}, {k})", iexpr_to_wgsl(a)),
        IExpr::Min(a, b) => format!("min({}, {})", iexpr_to_wgsl(a), iexpr_to_wgsl(b)),
        IExpr::Max(a, b) => format!("max({}, {})", iexpr_to_wgsl(a), iexpr_to_wgsl(b)),
    }
}

/// Renders a condition as WGSL.
pub fn cond_to_wgsl(c: &Cond) -> String {
    match c {
        Cond::True => "true".into(),
        Cond::Le(a, b) => format!("{} <= {}", iexpr_to_wgsl(a), iexpr_to_wgsl(b)),
        Cond::Lt(a, b) => format!("{} < {}", iexpr_to_wgsl(a), iexpr_to_wgsl(b)),
        Cond::Eq(a, b) => format!("{} == {}", iexpr_to_wgsl(a), iexpr_to_wgsl(b)),
        Cond::And(a, b) => format!("({} && {})", cond_to_wgsl(a), cond_to_wgsl(b)),
        Cond::Or(a, b) => format!("({} || {})", cond_to_wgsl(a), cond_to_wgsl(b)),
        Cond::Not(a) => format!("!({})", cond_to_wgsl(a)),
    }
}

/// Renders a float expression as WGSL.
pub fn fexpr_to_wgsl(e: &FExpr) -> String {
    match e {
        FExpr::Reg(r) => format!("r{r}"),
        FExpr::Const(c) => format!("{c:?}f"),
        FExpr::Add(a, b) => format!("({} + {})", fexpr_to_wgsl(a), fexpr_to_wgsl(b)),
        FExpr::Sub(a, b) => format!("({} - {})", fexpr_to_wgsl(a), fexpr_to_wgsl(b)),
        FExpr::Mul(a, b) => format!("({} * {})", fexpr_to_wgsl(a), fexpr_to_wgsl(b)),
        FExpr::Sqrt(a) => format!("sqrt({})", fexpr_to_wgsl(a)),
    }
}

/// Number of global stencil fields the body touches (fields are densely
/// numbered from 0 — the kernel IR carries no separate field count).
fn field_count(stmts: &[Stmt]) -> usize {
    let mut max: Option<usize> = None;
    visit(stmts, &mut |s| {
        if let Stmt::GlobalLoad { field, .. } | Stmt::GlobalStore { field, .. } = s {
            max = Some(max.map_or(*field, |m| m.max(*field)));
        }
    });
    max.map_or(0, |m| m + 1)
}

/// Widest spatial subscript of any global access (1-, 2- or 3-D grid).
fn global_arity(stmts: &[Stmt]) -> usize {
    let mut arity = 0;
    visit(stmts, &mut |s| {
        if let Stmt::GlobalLoad { index, .. } | Stmt::GlobalStore { index, .. } = s {
            arity = arity.max(index.len());
        }
    });
    arity
}

fn visit(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::For { body, .. } => visit(body, f),
            Stmt::If { then_, else_, .. } => {
                visit(then_, f);
                visit(else_, f);
            }
            _ => {}
        }
    }
}

/// The flattened storage-buffer subscript for a `(plane, spatial...)`
/// global access: `gidx(plane, i0, ..)`.
fn global_index(plane: &IExpr, index: &[IExpr]) -> String {
    let mut args = vec![iexpr_to_wgsl(plane)];
    args.extend(index.iter().map(iexpr_to_wgsl));
    format!("gidx({})", args.join(", "))
}

fn emit_stmts(out: &mut String, stmts: &[Stmt], kernel: &Kernel, depth: usize) {
    let pad = "  ".repeat(depth);
    for s in stmts {
        match s {
            Stmt::SetVar { var, value } => {
                let _ = writeln!(out, "{pad}v{var} = {};", iexpr_to_wgsl(value));
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}for (v{var} = {}; v{var} < {}; v{var} = v{var} + {step}) {{",
                    iexpr_to_wgsl(lo),
                    iexpr_to_wgsl(hi)
                );
                emit_stmts(out, body, kernel, depth + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::If { cond, then_, else_ } => {
                let _ = writeln!(out, "{pad}if ({}) {{", cond_to_wgsl(cond));
                emit_stmts(out, then_, kernel, depth + 1);
                if else_.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    emit_stmts(out, else_, kernel, depth + 1);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            Stmt::GlobalLoad {
                dst,
                field,
                plane,
                index,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}r{dst} = g{field}[{}];",
                    global_index(plane, index)
                );
            }
            Stmt::GlobalStore {
                field,
                plane,
                index,
                src,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}g{field}[{}] = {};",
                    global_index(plane, index),
                    fexpr_to_wgsl(src)
                );
            }
            Stmt::SharedLoad { dst, buf, index } => {
                let name = &kernel.shared[*buf].name;
                let idx: String = index
                    .iter()
                    .map(|e| format!("[{}]", iexpr_to_wgsl(e)))
                    .collect();
                let _ = writeln!(out, "{pad}r{dst} = {name}{idx};");
            }
            Stmt::SharedStore { buf, index, src } => {
                let name = &kernel.shared[*buf].name;
                let idx: String = index
                    .iter()
                    .map(|e| format!("[{}]", iexpr_to_wgsl(e)))
                    .collect();
                let _ = writeln!(out, "{pad}{name}{idx} = {};", fexpr_to_wgsl(src));
            }
            Stmt::Compute { dst, expr } => {
                let _ = writeln!(out, "{pad}r{dst} = {};", fexpr_to_wgsl(expr));
            }
            Stmt::Sync => {
                let _ = writeln!(out, "{pad}workgroupBarrier();");
            }
        }
    }
}

/// Nested WGSL array type for a shared buffer, innermost dimension last
/// (`dims = [16, 36]` → `array<array<f32, 36>, 16>`).
fn workgroup_array_type(dims: &[usize]) -> String {
    let mut ty = "f32".to_string();
    for d in dims.iter().rev() {
        ty = format!("array<{ty}, {d}>");
    }
    ty
}

/// Renders a full kernel as one self-contained WGSL compute module.
pub fn kernel_to_wgsl(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// block {}x{}x{}, {} bytes workgroup memory",
        kernel.block_dim[0],
        kernel.block_dim[1],
        kernel.block_dim[2],
        kernel.shared_bytes()
    );
    let fields = field_count(&kernel.body);
    for f in 0..fields {
        let _ = writeln!(
            out,
            "@group(0) @binding({f}) var<storage, read_write> g{f}: array<f32>;"
        );
    }
    if kernel.n_params > 0 {
        let members: Vec<String> = (0..kernel.n_params).map(|p| format!("p{p}: i32")).collect();
        let _ = writeln!(out, "struct Params {{ {} }}", members.join(", "));
        let _ = writeln!(out, "@group(1) @binding(0) var<uniform> P: Params;");
    }
    for b in &kernel.shared {
        let _ = writeln!(
            out,
            "var<workgroup> {}: {};",
            b.name,
            workgroup_array_type(&b.dims)
        );
    }
    let arity = global_arity(&kernel.body);
    if arity > 0 {
        // Flat layout of the (plane, spatial...) global ring; strides
        // are pipeline-overridable so one module serves any extent.
        let _ = writeln!(out, "override plane_stride: i32 = 1;");
        for d in 0..arity.saturating_sub(1) {
            let _ = writeln!(out, "override stride{d}: i32 = 1;");
        }
        let args: Vec<String> = std::iter::once("plane: i32".to_string())
            .chain((0..arity).map(|d| format!("i{d}: i32")))
            .collect();
        let mut flat = "plane * plane_stride".to_string();
        for d in 0..arity {
            if d + 1 < arity {
                let _ = write!(flat, " + i{d} * stride{d}");
            } else {
                let _ = write!(flat, " + i{d}");
            }
        }
        let _ = writeln!(
            out,
            "fn gidx({}) -> u32 {{ return u32({flat}); }}",
            args.join(", ")
        );
    }
    let uses_floord = format!("{:?}", kernel.body).contains("FloorDiv");
    let uses_pmod = format!("{:?}", kernel.body).contains("Mod(");
    if uses_floord {
        let _ = writeln!(
            out,
            "fn floord(a: i32, b: i32) -> i32 {{ var q = a / b; if ((a % b != 0) && ((a < 0) != (b < 0))) {{ q = q - 1; }} return q; }}"
        );
    }
    if uses_pmod {
        let _ = writeln!(
            out,
            "fn pmod(a: i32, b: i32) -> i32 {{ let r = a % b; if (r < 0) {{ return r + b; }} return r; }}"
        );
    }
    let _ = writeln!(
        out,
        "@compute @workgroup_size({}, {}, {})",
        kernel.block_dim[0], kernel.block_dim[1], kernel.block_dim[2]
    );
    let _ = writeln!(
        out,
        "fn {}(@builtin(local_invocation_id) lid: vec3<u32>, @builtin(workgroup_id) wid: vec3<u32>) {{",
        kernel.name
    );
    for v in 0..kernel.n_vars {
        let _ = writeln!(out, "  var v{v}: i32 = 0;");
    }
    for r in 0..kernel.n_regs {
        let _ = writeln!(out, "  var r{r}: f32 = 0.0;");
    }
    emit_stmts(&mut out, &kernel.body, kernel, 1);
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::SharedBuf;

    fn demo_kernel() -> Kernel {
        Kernel {
            name: "demo".into(),
            block_dim: [32, 1, 1],
            shared: vec![SharedBuf {
                name: "s_A".into(),
                dims: vec![2, 10],
            }],
            n_vars: 1,
            n_regs: 2,
            n_params: 1,
            body: vec![
                Stmt::SetVar {
                    var: 0,
                    value: IExpr::BlockIdx.scale(32).add(IExpr::ThreadIdx(0)),
                },
                Stmt::If {
                    cond: Cond::Lt(IExpr::Var(0), IExpr::Const(100)),
                    then_: vec![
                        Stmt::GlobalLoad {
                            dst: 0,
                            field: 0,
                            plane: IExpr::Param(0).modulo(2),
                            index: vec![IExpr::Var(0)],
                        },
                        Stmt::SharedStore {
                            buf: 0,
                            index: vec![IExpr::Const(0), IExpr::ThreadIdx(0).modulo(10)],
                            src: FExpr::Reg(0),
                        },
                    ],
                    else_: vec![],
                },
                Stmt::Sync,
            ],
        }
    }

    #[test]
    fn emits_wgsl_surface_not_cuda() {
        let src = kernel_to_wgsl(&demo_kernel());
        assert!(src.contains("@compute @workgroup_size(32, 1, 1)"));
        assert!(src.contains("var<workgroup> s_A: array<array<f32, 10>, 2>;"));
        assert!(src.contains("workgroupBarrier();"));
        assert!(src.contains("@builtin(local_invocation_id)"));
        assert!(src.contains("var<storage, read_write> g0: array<f32>;"));
        assert!(src.contains("gidx(pmod(P.p0, 2), v0)"));
        assert!(!src.contains("__shared__"));
        assert!(!src.contains("threadIdx"));
        assert!(!src.contains("__syncthreads"));
    }

    #[test]
    fn helpers_are_emitted_on_demand() {
        let src = kernel_to_wgsl(&demo_kernel());
        assert!(src.contains("fn pmod("), "pmod is used by the body");
        assert!(!src.contains("fn floord("), "floord is not");
    }
}
