//! # gpu-codegen — CUDA-model code generation for tiled stencils (§4)
//!
//! The paper generates CUDA through PPCG's generic code generator plus
//! stencil-specific strategies. Here the target is a small, explicit
//! [kernel IR](ir) interpreted warp-synchronously by the `gpusim` crate; the
//! same IR pretty-prints to CUDA-C-like source ([`cuda_emit`]) and to the
//! pseudo-PTX view of the paper's Fig. 2 ([`ptx_emit`]), and — through the
//! [`backend::Backend`] trait — to WGSL ([`wgsl_emit`]), HIP C++
//! ([`c_like`] with the HIP dialect) and whole-block vectorized CPU C
//! ([`cpu_emit`]).
//!
//! Code-generation strategies implemented (paper §4.2–§4.3):
//!
//! * full/partial tile separation — specialized, guard-free code for full
//!   tiles, guarded code for boundary tiles (§4.3.1);
//! * unrolling of the constant-trip intra-tile loops (§4.3.2);
//! * the shared-memory optimization ladder of Table 4:
//!   `(a)` global only, `(b)` shared with copy-in/copy-out phases,
//!   `(c)` interleaved copy-out, `(d)` aligned loads, `(e)` static
//!   inter-tile reuse (mod-mapped shared addresses), `(f)` dynamic
//!   inter-tile reuse (dense addresses plus an explicit move phase).

pub mod backend;
pub mod c_like;
pub mod cpu_emit;
pub mod cuda_emit;
pub mod hybrid_gen;
pub mod ir;
pub mod options;
pub mod ptx_emit;
pub mod wgsl_emit;

pub use backend::{Backend, BackendCaps, BackendKind};
pub use hybrid_gen::{generate_hybrid, CodegenError, HybridCodegen};
pub use ir::{Cond, FExpr, IExpr, Kernel, LaunchPlan, SharedBuf, Stmt};
pub use options::{CodegenOptions, SmemStrategy};
