//! Offline stand-in for the [criterion] benchmark harness.
//!
//! The build environment has no registry access, so this crate provides the
//! (small) subset of criterion's API that the workspace benches use —
//! benchmark groups, `bench_function`, `Bencher::iter`, throughput
//! annotations and the `criterion_group!`/`criterion_main!` macros — backed
//! by a simple wall-clock sampler. Numbers are comparable run-to-run on the
//! same machine; no statistics, plots, or baselines are produced.
//!
//! Run with `cargo bench`. Pass a substring argument to filter benchmarks,
//! or `--test` (as `cargo test` would) to run every benchmark exactly once.
//!
//! [criterion]: https://crates.io/crates/criterion

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation: scales the per-iteration time into an
/// elements/sec or bytes/sec rate in the report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle, passed to every registered bench function.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Criterion flags that take a separate value argument; their value
        // must not be mistaken for a positional benchmark filter.
        const VALUE_FLAGS: &[&str] = &[
            "--sample-size",
            "--baseline",
            "--save-baseline",
            "--load-baseline",
            "--measurement-time",
            "--warm-up-time",
            "--significance-level",
            "--noise-threshold",
            "--confidence-level",
            "--profile-time",
            "--output-format",
            "--color",
            "--nresamples",
        ];
        let mut filter = None;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" => {}
                "--test" => test_mode = true,
                s if VALUE_FLAGS.contains(&s) => {
                    args.next(); // accepted and ignored, with its value
                }
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Criterion's configuration hook; accepted and ignored here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Registers a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }

    fn should_run(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of benchmarks sharing a name prefix, sample size, and
/// throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark: a warm-up iteration plus `sample_size` timed
    /// samples, reporting the minimum (least-noise) sample.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        if !self.criterion.should_run(&full) {
            return self;
        }
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up (also the only run in --test mode).
        f(&mut b);
        if self.criterion.test_mode {
            println!("test {full} ... ok");
            return self;
        }
        let mut best = Duration::MAX;
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            let per_iter = b.elapsed / b.iters.max(1) as u32;
            if per_iter < best {
                best = per_iter;
            }
        }
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!("  {:.3} Melem/s", n as f64 / best.as_secs_f64() / 1e6)
            }
            Throughput::Bytes(n) => format!(
                "  {:.3} MiB/s",
                n as f64 / best.as_secs_f64() / (1 << 20) as f64
            ),
        });
        println!(
            "{full:<56} {:>12}{}",
            format_duration(best),
            rate.unwrap_or_default()
        );
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(&mut self) {}
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // A handful of iterations per sample amortizes timer overhead
        // without letting one sample run long.
        self.iters = 4;
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Collects bench functions into a named group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main`, running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut ran = 0u32;
        let mut g = c.benchmark_group("t");
        g.sample_size(2).bench_function("one", |b| {
            b.iter(|| 1 + 1);
        });
        g.finish();
        drop(g);
        ran += 1;
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("zzz".into()),
            test_mode: false,
        };
        let mut g = c.benchmark_group("t");
        g.bench_function("one", |_b| panic!("must not run"));
        g.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
