//! The paper's central code-quality claim, measured: *full-tile core
//! computation is free of thread divergence* (§2, §4.3.1), because every
//! full hexagonal tile contains the same number of integer points and the
//! specialized code path carries no per-lane conditions.

use gpu_codegen::ir::{Cond, IExpr, Stmt};
use hybrid_hexagonal::prelude::*;
use stencil::gallery;

/// Structural check: inside the full-tile branch of a hybrid kernel, no
/// `If` condition depends on thread indices — i.e. lane-varying control
/// flow is impossible, not merely unobserved.
#[test]
fn full_tile_branch_has_no_lane_dependent_conditions() {
    fn cond_uses_tid(c: &Cond) -> bool {
        fn expr_uses_tid(e: &IExpr) -> bool {
            match e {
                IExpr::ThreadIdx(_) => true,
                IExpr::Const(_) | IExpr::Var(_) | IExpr::Param(_) | IExpr::BlockIdx => false,
                IExpr::Add(a, b)
                | IExpr::Sub(a, b)
                | IExpr::Mul(a, b)
                | IExpr::Min(a, b)
                | IExpr::Max(a, b) => expr_uses_tid(a) || expr_uses_tid(b),
                IExpr::FloorDiv(a, _) | IExpr::Mod(a, _) => expr_uses_tid(a),
            }
        }
        match c {
            Cond::True => false,
            Cond::Le(a, b) | Cond::Lt(a, b) | Cond::Eq(a, b) => {
                expr_uses_tid(a) || expr_uses_tid(b)
            }
            Cond::And(a, b) | Cond::Or(a, b) => cond_uses_tid(a) || cond_uses_tid(b),
            Cond::Not(a) => cond_uses_tid(a),
        }
    }

    fn has_compute(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Compute { .. } => true,
            Stmt::If { then_, else_, .. } => has_compute(then_) || has_compute(else_),
            Stmt::For { body, .. } => has_compute(body),
            _ => false,
        })
    }

    /// Walk the full-tile branches (then-branch of Ifs that separate
    /// full/partial compute) and assert no nested lane-dependent Ifs.
    fn check_full_branches(stmts: &[Stmt]) -> usize {
        let mut found = 0;
        for s in stmts {
            match s {
                Stmt::If { cond, then_, else_ } => {
                    if !else_.is_empty() && has_compute(then_) {
                        // This is the full/partial separation point.
                        assert!(!cond_uses_tid(cond), "separation condition must be uniform");
                        assert_no_lane_ifs(then_);
                        found += 1;
                    } else {
                        found += check_full_branches(then_);
                        found += check_full_branches(else_);
                    }
                }
                Stmt::For { body, .. } => found += check_full_branches(body),
                _ => {}
            }
        }
        found
    }

    fn assert_no_lane_ifs(stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::If { cond, then_, else_ } => {
                    assert!(
                        !cond_uses_tid(cond),
                        "full-tile code contains a lane-dependent condition: {cond:?}"
                    );
                    assert_no_lane_ifs(then_);
                    assert_no_lane_ifs(else_);
                }
                Stmt::For { body, .. } => assert_no_lane_ifs(body),
                _ => {}
            }
        }
    }

    for program in [gallery::jacobi2d(), gallery::heat3d(), gallery::fdtd2d()] {
        let params = match program.spatial_dims() {
            2 => TileParams::new(2, &[3, 32]),
            _ => TileParams::new(1, &[2, 4, 32]),
        };
        let plan = gpu_codegen::generate_hybrid(
            &program,
            &params,
            &vec![128; program.spatial_dims()],
            8,
            CodegenOptions {
                smem: SmemStrategy::GlobalOnly,
                aligned_loads: false,
                unroll: true,
            },
        )
        .unwrap();
        for kernel in &plan.kernels {
            let n = check_full_branches(&kernel.body);
            assert!(n > 0, "{}: no full/partial separation found", kernel.name);
        }
    }
}

/// Behavioural check: with shared memory disabled (so the only possible
/// divergence sources are compute guards), an interior-only domain run
/// reports zero divergent branches from the compute sweeps of full tiles.
#[test]
fn interior_full_tiles_execute_without_divergence() {
    let program = gallery::jacobi2d();
    let params = TileParams::new(2, &[3, 32]);
    let dims = [256usize, 256];
    let steps = 12;
    let opts = CodegenOptions {
        smem: SmemStrategy::GlobalOnly,
        aligned_loads: false,
        unroll: true,
    };
    let plan = gpu_codegen::generate_hybrid(&program, &params, &dims, steps, opts).unwrap();
    let init = vec![Grid::random(&dims, 1)];
    let mut sim = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
    sim.run_plan(&plan);
    let c = sim.counters();
    // GlobalOnly has no copy phases, so all divergence comes from partial
    // tiles' guards. Full tiles dominate this domain: the divergence rate
    // per point must be far below one branch per warp-point.
    let points = (254u64 * 254 * steps as u64) as f64;
    let warp_points = points / 32.0;
    let rate = c.divergent_branches as f64 / warp_points;
    // Verify correctness too, so the low divergence is not from skipping.
    let mut oracle = ReferenceExecutor::new(&program, &init);
    oracle.run(steps);
    assert!(sim.plane(0, steps % 2).bit_equal(oracle.field(0)));
    assert!(
        rate < 0.6,
        "divergence rate {rate} too high: full tiles must be divergence-free"
    );

    // Control experiment: the same workload under the Par4All baseline
    // guards *every* point, so divergence events appear at tile borders
    // in every warp row that straddles the boundary.
    let base = baselines::generate_par4all(&program, &dims, steps);
    let mut sim_b = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
    sim_b.run_plan(&base);
    assert!(
        sim_b.counters().divergent_branches > 0,
        "guarded baseline should show boundary divergence"
    );
}
