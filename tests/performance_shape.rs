//! Cross-crate integration: the *shape* of the paper's evaluation must
//! hold on the simulator — who wins, in which direction the optimization
//! ladder moves, and what the counters say. Absolute numbers are not
//! asserted (the substrate is a model, not the authors' testbed).

use gpusim::timing;
use gpusim::DeviceConfig;
use hybrid_bench::{measure, Compiler};
use stencil::gallery;

fn gstencils(c: Compiler, p: &stencil::StencilProgram, dims: &[usize], steps: usize) -> f64 {
    measure(c, p, &DeviceConfig::gtx470(), dims, steps, 2).gstencils
}

#[test]
fn hybrid_beats_every_baseline_on_2d_heat() {
    let p = gallery::heat2d();
    let dims = [256usize, 256];
    let steps = 20;
    let hybrid = gstencils(Compiler::Hybrid, &p, &dims, steps);
    let ppcg = gstencils(Compiler::Ppcg, &p, &dims, steps);
    let par4all = gstencils(Compiler::Par4all, &p, &dims, steps);
    let overtile = gstencils(Compiler::Overtile, &p, &dims, steps);
    assert!(hybrid > ppcg, "hybrid {hybrid} !> ppcg {ppcg}");
    assert!(hybrid > par4all, "hybrid {hybrid} !> par4all {par4all}");
    assert!(hybrid > overtile, "hybrid {hybrid} !> overtile {overtile}");
    // Overtile's time tiling also beats plain spatial tiling in 2D.
    assert!(overtile > ppcg, "overtile {overtile} !> ppcg {ppcg}");
}

#[test]
fn hybrid_beats_baselines_on_3d_heat() {
    let p = gallery::heat3d();
    let dims = [64usize, 64, 64];
    let steps = 6;
    let hybrid = gstencils(Compiler::Hybrid, &p, &dims, steps);
    let ppcg = gstencils(Compiler::Ppcg, &p, &dims, steps);
    assert!(hybrid > ppcg, "hybrid {hybrid} !> ppcg {ppcg}");
}

#[test]
fn space_tiling_baselines_are_dram_bound() {
    let p = gallery::heat2d();
    let m = measure(
        Compiler::Ppcg,
        &p,
        &DeviceConfig::gtx470(),
        &[512, 512],
        10,
        2,
    );
    assert_eq!(m.bound_by, "dram", "per-step kernels must stream DRAM");
    // Hybrid lifts the kernel off the DRAM roof.
    let h = measure(
        Compiler::Hybrid,
        &p,
        &DeviceConfig::gtx470(),
        &[512, 512],
        16,
        2,
    );
    assert_ne!(h.bound_by, "dram", "time tiling must amortize DRAM traffic");
}

#[test]
fn hybrid_dram_traffic_is_a_fraction_of_ppcg() {
    let p = gallery::heat2d();
    let dims = [512usize, 512];
    let steps = 16;
    let hybrid = measure(
        Compiler::Hybrid,
        &p,
        &DeviceConfig::gtx470(),
        &dims,
        steps,
        2,
    );
    let ppcg = measure(Compiler::Ppcg, &p, &DeviceConfig::gtx470(), &dims, steps, 2);
    assert!(
        (hybrid.counters.dram_bytes() as f64) < 0.7 * ppcg.counters.dram_bytes() as f64,
        "hybrid {} vs ppcg {} DRAM bytes",
        hybrid.counters.dram_bytes(),
        ppcg.counters.dram_bytes()
    );
}

#[test]
fn gtx470_is_consistently_faster_than_nvs5200m() {
    let p = gallery::jacobi2d();
    let dims = [256usize, 256];
    let steps = 16;
    for c in [Compiler::Ppcg, Compiler::Hybrid] {
        let big = measure(c, &p, &DeviceConfig::gtx470(), &dims, steps, 2).gstencils;
        let small = measure(c, &p, &DeviceConfig::nvs5200m(), &dims, steps, 2).gstencils;
        assert!(big > 2.0 * small, "{c:?}: {big} !>> {small}");
    }
}

#[test]
fn static_reuse_bank_conflicts_exceed_dynamic() {
    // Table 5's (e) vs (f): mod-mapped shared addressing replays loads.
    use gpu_codegen::{generate_hybrid, CodegenOptions, SmemStrategy};
    use hybrid_tiling::TileParams;
    let p = gallery::heat3d();
    let params = TileParams::new(2, &[5, 4, 32]);
    let dims = [64usize, 64, 64];
    let run = |smem| {
        let opts = CodegenOptions {
            smem,
            aligned_loads: true,
            unroll: true,
        };
        let plan = generate_hybrid(&p, &params, &dims, 6, opts).unwrap();
        hybrid_bench::measure_plan(&plan, 0, &p, &DeviceConfig::gtx470(), &dims, 6, 2)
    };
    let stat = run(SmemStrategy::ReuseStatic);
    let dynm = run(SmemStrategy::ReuseDynamic);
    assert!(
        stat.counters.shared_loads_per_request() > dynm.counters.shared_loads_per_request() + 0.1,
        "static {} vs dynamic {}",
        stat.counters.shared_loads_per_request(),
        dynm.counters.shared_loads_per_request()
    );
}

#[test]
fn launch_overhead_visible_for_many_tiny_kernels() {
    let p = gallery::jacobi2d();
    let m = measure(
        Compiler::Par4all,
        &p,
        &DeviceConfig::nvs5200m(),
        &[64, 64],
        50,
        2,
    );
    let t = timing::estimate_time(&m.counters, &DeviceConfig::nvs5200m());
    assert!(t.launch > 0.0);
    assert_eq!(m.counters.launches, 50);
}
