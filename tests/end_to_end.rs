//! Cross-crate integration: every compiler (hybrid at each optimization
//! ladder step and every baseline) produces bit-identical results to the
//! sequential oracle for every gallery stencil, on fully simulated runs.

use baselines::{generate_overtile, generate_par4all, generate_patus, generate_ppcg};
use gpu_codegen::ir::LaunchPlan;
use hybrid_hexagonal::prelude::*;
use stencil::gallery;

fn assert_bit_exact(
    program: &StencilProgram,
    dims: &[usize],
    steps: usize,
    label: &str,
    plan: &LaunchPlan,
) {
    let planes = (program.max_dt() as usize) + 1;
    let init: Vec<Grid> = (0..program.num_fields())
        .map(|f| Grid::random(dims, 42 + f as u64))
        .collect();
    let mut oracle = ReferenceExecutor::new(program, &init);
    oracle.run(steps);
    let mut sim = GpuSim::new(DeviceConfig::gtx470(), &init, planes);
    sim.run_plan(plan);
    let out = steps % planes;
    for f in 0..program.num_fields() {
        assert!(
            sim.plane(f, out).bit_equal(oracle.field(f)),
            "{} {label}: field {f} diverged (max abs diff {:e})",
            program.name(),
            sim.plane(f, out).max_abs_diff(oracle.field(f))
        );
    }
}

fn hybrid_plan(
    program: &StencilProgram,
    dims: &[usize],
    steps: usize,
    opts: CodegenOptions,
) -> LaunchPlan {
    let params = match (program.name(), program.spatial_dims()) {
        (_, 1) => TileParams::new(2, &[3]),
        ("fdtd2d", _) => TileParams::new(2, &[2, 8]),
        (_, 2) => TileParams::new(2, &[3, 8]),
        _ => TileParams::new(1, &[1, 3, 8]),
    };
    gpu_codegen::generate_hybrid(program, &params, dims, steps, opts).expect("hybrid plan")
}

#[test]
fn hybrid_ladder_matches_oracle_on_2d_stencils() {
    for program in [
        gallery::jacobi2d(),
        gallery::laplacian2d(),
        gallery::heat2d(),
        gallery::gradient2d(),
        gallery::fdtd2d(),
    ] {
        let dims = [20usize, 20];
        let steps = 5;
        for (label, opts) in CodegenOptions::ladder() {
            let plan = hybrid_plan(&program, &dims, steps, opts);
            assert_bit_exact(&program, &dims, steps, label, &plan);
        }
    }
}

#[test]
fn hybrid_ladder_matches_oracle_on_3d_stencils() {
    for program in [
        gallery::laplacian3d(),
        gallery::heat3d(),
        gallery::gradient3d(),
    ] {
        let dims = [10usize, 10, 12];
        let steps = 4;
        for (label, opts) in CodegenOptions::ladder() {
            let plan = hybrid_plan(&program, &dims, steps, opts);
            assert_bit_exact(&program, &dims, steps, label, &plan);
        }
    }
}

#[test]
fn hybrid_matches_oracle_on_1d_multi_dt_stencil() {
    let program = gallery::contrived1d();
    let plan = hybrid_plan(&program, &[40], 6, CodegenOptions::best());
    assert_bit_exact(&program, &[40], 6, "hybrid-1d", &plan);
}

#[test]
fn baselines_match_oracle() {
    for program in [gallery::jacobi2d(), gallery::heat2d(), gallery::fdtd2d()] {
        let dims = [24usize, 24];
        let steps = 10;
        assert_bit_exact(
            &program,
            &dims,
            steps,
            "par4all",
            &generate_par4all(&program, &dims, steps),
        );
        assert_bit_exact(
            &program,
            &dims,
            steps,
            "ppcg",
            &generate_ppcg(&program, &dims, steps),
        );
        assert_bit_exact(
            &program,
            &dims,
            steps,
            "overtile",
            &generate_overtile(&program, &dims, steps),
        );
    }
    for program in [
        gallery::laplacian3d(),
        gallery::heat3d(),
        gallery::gradient3d(),
    ] {
        let dims = [10usize, 10, 10];
        let steps = 3;
        assert_bit_exact(
            &program,
            &dims,
            steps,
            "par4all",
            &generate_par4all(&program, &dims, steps),
        );
        assert_bit_exact(
            &program,
            &dims,
            steps,
            "ppcg",
            &generate_ppcg(&program, &dims, steps),
        );
        assert_bit_exact(
            &program,
            &dims,
            steps,
            "overtile",
            &generate_overtile(&program, &dims, steps),
        );
        if baselines::patus::supported(&program) {
            assert_bit_exact(
                &program,
                &dims,
                steps,
                "patus",
                &generate_patus(&program, &dims, steps),
            );
        }
    }
}

#[test]
fn overtile_multi_step_time_tiles_match_oracle() {
    let program = gallery::jacobi2d();
    let dims = [20usize, 20];
    let plan = baselines::overtile::generate_overtile_ts(&program, &dims, 15, 5);
    assert_bit_exact(&program, &dims, 15, "overtile-ts5", &plan);
}

#[test]
fn alignment_translation_preserves_results() {
    // The §4.2.3 global translation changes addresses, never values.
    let program = gallery::jacobi2d();
    let dims = [20usize, 20];
    let steps = 5;
    let params = TileParams::new(2, &[3, 8]);
    let opts = CodegenOptions::best();
    let plan = gpu_codegen::generate_hybrid(&program, &params, &dims, steps, opts).unwrap();
    let off = gpu_codegen::hybrid_gen::alignment_offset_words(&program, &params, &opts);
    let init = vec![Grid::random(&dims, 9)];
    let mut oracle = ReferenceExecutor::new(&program, &init);
    oracle.run(steps);
    let mut sim = GpuSim::with_global_offset(DeviceConfig::gtx470(), &init, 2, off);
    sim.run_plan(&plan);
    assert!(sim.plane(0, steps % 2).bit_equal(oracle.field(0)));
}
