//! Smoke coverage for the examples: all five compile, and `quickstart`
//! runs the full pipeline (schedule → codegen → simulation → bit-exact
//! check) to completion.
//!
//! The test shells out to the `cargo` that invoked it; the build lock is
//! free while tests run, and the shared target directory keeps the builds
//! incremental.

use std::path::Path;
use std::process::Command;

fn cargo() -> Command {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"));
    cmd
}

#[test]
fn all_five_examples_compile() {
    for name in [
        "quickstart",
        "custom_stencil",
        "inspect_codegen",
        "compare_compilers",
        "heat3d_tuning",
    ] {
        let src = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("examples")
            .join(format!("{name}.rs"));
        assert!(src.is_file(), "example source {} missing", src.display());
    }
    let out = cargo()
        .args(["build", "--examples"])
        .output()
        .expect("spawn cargo build --examples");
    assert!(
        out.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn quickstart_runs_to_completion() {
    let out = cargo()
        .args(["run", "-q", "--example", "quickstart"])
        .output()
        .expect("spawn cargo run --example quickstart");
    assert!(
        out.status.success(),
        "quickstart exited with {:?}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("bit-exact"),
        "quickstart did not report its bit-exactness check:\n{stdout}"
    );
}
