//! Cross-crate integration: exhaustive hybrid-schedule verification for
//! every gallery stencil, including the storage anti-dependences the
//! executable kernels must respect, plus property-based verification over
//! random cones and tile parameters.

use hybrid_hexagonal::prelude::*;
use hybrid_tiling::verify::{verify_schedule_storage, verify_with_vectors};
use hybrid_tiling::HexShape;
use polylib::Rat;
use proptest::prelude::*;
use stencil::domain::ScheduledDomain;
use stencil::{gallery, DistanceVector};

#[test]
fn every_gallery_stencil_verifies_flow_and_storage() {
    let cases: Vec<(StencilProgram, TileParams, Vec<usize>, usize)> = vec![
        (
            gallery::jacobi2d(),
            TileParams::new(2, &[2, 3]),
            vec![16, 12],
            9,
        ),
        (
            gallery::laplacian2d(),
            TileParams::new(1, &[1, 4]),
            vec![14, 14],
            8,
        ),
        (
            gallery::heat2d(),
            TileParams::new(2, &[3, 2]),
            vec![14, 12],
            7,
        ),
        (
            gallery::gradient2d(),
            TileParams::new(1, &[2, 3]),
            vec![12, 12],
            6,
        ),
        (
            gallery::fdtd2d(),
            TileParams::new(2, &[2, 3]),
            vec![12, 12],
            4,
        ),
        (
            gallery::laplacian3d(),
            TileParams::new(1, &[1, 2, 3]),
            vec![8, 8, 8],
            4,
        ),
        (
            gallery::heat3d(),
            TileParams::new(1, &[2, 2, 2]),
            vec![8, 8, 8],
            4,
        ),
        (
            gallery::gradient3d(),
            TileParams::new(1, &[1, 3, 2]),
            vec![8, 8, 8],
            4,
        ),
        (
            gallery::contrived1d(),
            TileParams::new(2, &[3]),
            vec![36],
            9,
        ),
    ];
    for (program, params, dims, steps) in cases {
        let domain = ScheduledDomain::new(&program, &dims, steps);
        let flow = HybridSchedule::compute(&program, &params)
            .unwrap_or_else(|e| panic!("{}: {e}", program.name()));
        verify_schedule(&flow, &program, &domain)
            .unwrap_or_else(|e| panic!("{} flow: {e}", program.name()));
        let exec = HybridSchedule::compute_executable(&program, &params)
            .unwrap_or_else(|e| panic!("{}: {e}", program.name()));
        verify_schedule_storage(&exec, &program, &domain)
            .unwrap_or_else(|e| panic!("{} storage: {e}", program.name()));
    }
}

#[test]
fn full_tiles_all_carry_identical_point_counts() {
    let program = gallery::jacobi2d();
    let params = TileParams::new(2, &[3, 4]);
    let schedule = HybridSchedule::compute(&program, &params).unwrap();
    let domain = ScheduledDomain::new(&program, &[40, 30], 20);
    let report = verify_schedule(&schedule, &program, &domain).unwrap();
    assert!(
        report.full_tiles >= 8,
        "want several full tiles, got {}",
        report.full_tiles
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random uniform-dependence cones with random legal tile sizes always
    /// produce a correct hexagonal tiling of the (τ, s0) plane.
    #[test]
    fn random_cones_tile_correctly(
        up in 0i64..3,
        down in 0i64..3,
        dt2 in 1i64..3,
        h in 0i64..4,
        extra_w in 0i64..3,
    ) {
        // Distance vectors: (1, -up), (1, down), (dt2, up) — a mix of
        // slopes with dt > 1.
        let vectors = vec![
            DistanceVector::new(1, &[-up]),
            DistanceVector::new(1, &[down]),
            DistanceVector::new(dt2, &[up]),
        ];
        let cone = DepCone::from_vectors(vectors.clone()).unwrap();
        let w0 = HexShape::min_width(cone.delta0(0), cone.delta1(0), h) + extra_w;
        let hex = HexShape::new(cone.delta0(0), cone.delta1(0), h, w0).unwrap();
        // Partition: every instance claimed exactly once.
        for tau in 0..3 * hex.box_height() {
            for s0 in -2 * hex.box_width()..2 * hex.box_width() {
                let claims = hybrid_tiling::phase::claims(&hex, tau, s0);
                prop_assert_eq!(claims.len(), 1, "({}, {})", tau, s0);
            }
        }
    }

    /// The same schedules order every dependence legally.
    #[test]
    fn random_cones_respect_dependences(
        up in 0i64..3,
        down in 0i64..3,
        h in 0i64..3,
        extra_w in 0i64..2,
    ) {
        let a = stencil::FieldId(0);
        let mut terms = vec![stencil::StencilExpr::load(a, 1, &[0])];
        if up > 0 {
            terms.push(stencil::StencilExpr::load(a, 1, &[-up]));
        }
        if down > 0 {
            terms.push(stencil::StencilExpr::load(a, 1, &[down]));
        }
        let program = StencilProgram::new(
            "prop",
            1,
            &["A"],
            vec![stencil::Statement {
                name: "S".into(),
                writes: a,
                expr: stencil::StencilExpr::sum(terms).scale(0.3),
            }],
        )
        .unwrap();
        let cone = DepCone::of_program(&program).unwrap();
        let w0 = HexShape::min_width(cone.delta0(0), cone.delta1(0), h) + extra_w;
        let params = TileParams::new(h, &[w0]);
        let schedule = HybridSchedule::compute(&program, &params).unwrap();
        let reach = program.radius()[0].max(1) as usize;
        let domain = ScheduledDomain::new(&program, &[16 * reach], 10);
        let report = verify_schedule(&schedule, &program, &domain);
        prop_assert!(report.is_ok(), "{:?}", report.err());
    }

    /// Storage-aware verification with explicit vector sets.
    #[test]
    fn explicit_vector_sets_verify(h in 1i64..3, w0 in 2i64..4) {
        let program = gallery::contrived1d();
        let params = TileParams::new(h, &[w0]);
        let schedule = HybridSchedule::compute_executable(&program, &params).unwrap();
        let domain = ScheduledDomain::new(&program, &[30], 8);
        let vectors = stencil::deps::distance_vectors_with_storage(&program, 3);
        prop_assert!(verify_with_vectors(&schedule, &domain, &vectors).is_ok());
    }
}

#[test]
fn hexagon_width_bound_is_tight() {
    // Exactly at the inequality-(1) minimum the tiling works; below it the
    // constructor refuses.
    let d0 = Rat::ONE;
    let d1 = Rat::from(2);
    for h in 1..4 {
        let min = HexShape::min_width(d0, d1, h);
        assert!(HexShape::new(d0, d1, h, min).is_ok());
        if min > 0 {
            assert!(HexShape::new(d0, d1, h, min - 1).is_err());
        }
    }
}
