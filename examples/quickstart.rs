//! Quickstart: tile the Fig. 1 Jacobi stencil with hybrid
//! hexagonal/classical tiling, run it on the simulated GTX 470, and verify
//! the result bit-for-bit against the sequential oracle.
//!
//! Run with: `cargo run --release --example quickstart`

use hybrid_hexagonal::prelude::*;
use hybrid_tiling::verify::verify_schedule_storage;
use stencil::domain::ScheduledDomain;
use stencil::gallery;

fn main() {
    // 1. The input program (paper Fig. 1).
    let program = gallery::jacobi2d();
    println!("Input stencil:\n{}", program.to_c_like());

    // 2. Build the hybrid schedule: dependence cone -> hexagon -> phases.
    let params = TileParams::new(2, &[3, 32]);
    let schedule = HybridSchedule::compute(&program, &params).expect("jacobi is canonical");
    println!(
        "dependence cone: delta0 = {}, delta1 = {}",
        schedule.cone().delta0(0),
        schedule.cone().delta1(0)
    );
    println!(
        "hexagonal tile: {} points per full tile ({} with classical dims)",
        schedule.hex().count_points(),
        schedule.points_per_full_tile()
    );

    // 3. Exhaustively verify the schedule on a bounded domain.
    let dims = [128usize, 128];
    let steps = 18;
    let exec_schedule =
        HybridSchedule::compute_executable(&program, &params).expect("storage-aware schedule");
    let domain = ScheduledDomain::new(&program, &dims, steps);
    let report = verify_schedule_storage(&exec_schedule, &program, &domain)
        .expect("schedule must be correct");
    println!(
        "verified: {} instances, {} dependences, {} full / {} partial tiles",
        report.instances, report.dependences, report.full_tiles, report.partial_tiles
    );

    // 4. Generate CUDA-model kernels and simulate them.
    let plan =
        generate_hybrid(&program, &params, &dims, steps, CodegenOptions::best()).expect("codegen");
    println!("{plan}");
    let init = vec![Grid::random(&dims, 1)];
    let mut sim = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
    sim.run_plan(&plan);

    // 5. Compare against the oracle — must be bit-identical.
    let mut oracle = ReferenceExecutor::new(&program, &init);
    oracle.run(steps);
    assert!(
        sim.plane(0, steps % 2).bit_equal(oracle.field(0)),
        "simulated GPU result must match the oracle exactly"
    );
    let c = sim.counters();
    println!(
        "bit-exact ✓ | {} launches, {} global loads, {} shared loads, gld efficiency {:.0}%",
        c.launches,
        c.gld_inst,
        c.shared_load_requests,
        c.gld_efficiency() * 100.0
    );
}
