//! Define your own stencil and run the whole pipeline on it: a 2D
//! anisotropic 5-point stencil with an asymmetric reach (two cells west,
//! one cell east), which exercises an asymmetric dependence cone
//! (δ0 ≠ δ1) — the general case of the paper's §3.3.2.
//!
//! Run with: `cargo run --release --example custom_stencil`

use hybrid_hexagonal::prelude::*;
use stencil::{FieldId, Statement, StencilExpr};

fn main() {
    let a = FieldId(0);
    let program = StencilProgram::new(
        "anisotropic5",
        2,
        &["A"],
        vec![Statement {
            name: "S0".into(),
            writes: a,
            expr: StencilExpr::sum(vec![
                StencilExpr::load(a, 1, &[0, 0]),
                StencilExpr::load(a, 1, &[-2, 0]).scale(0.5), // two cells "west"
                StencilExpr::load(a, 1, &[1, 0]),
                StencilExpr::load(a, 1, &[0, -1]),
                StencilExpr::load(a, 1, &[0, 1]),
            ])
            .scale(0.25),
        }],
    )
    .expect("canonical stencil");

    // The cone is asymmetric along s0: delta0 = 2 (west reach), delta1 = 1.
    let cone = DepCone::of_program(&program).expect("cone");
    println!(
        "delta0 = {}, delta1 = {} (asymmetric cone)",
        cone.delta0(0),
        cone.delta1(0)
    );

    // Inequality (1) in action: w0 = 0 is illegal for this cone.
    let too_small = HybridSchedule::compute(&program, &TileParams::new(2, &[0, 16]));
    println!("w0 = 0 rejected: {}", too_small.unwrap_err());

    let params = TileParams::new(2, &[3, 16]);
    let schedule = HybridSchedule::compute(&program, &params).expect("schedule");
    println!(
        "hexagon: {} points per tile, box {}x{}",
        schedule.hex().count_points(),
        schedule.hex().box_height(),
        schedule.hex().box_width()
    );

    // End-to-end: simulate and compare with the oracle.
    let dims = [40usize, 48];
    let steps = 9;
    let plan =
        gpu_codegen::generate_hybrid(&program, &params, &dims, steps, CodegenOptions::best())
            .expect("plan");
    let init = vec![Grid::random(&dims, 5)];
    let mut sim = GpuSim::new(DeviceConfig::nvs5200m(), &init, 2);
    sim.run_plan(&plan);
    let mut oracle = ReferenceExecutor::new(&program, &init);
    oracle.run(steps);
    assert!(sim.plane(0, steps % 2).bit_equal(oracle.field(0)));
    println!("custom stencil simulated bit-exactly ✓");
}
