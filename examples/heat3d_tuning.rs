//! Tile-size selection for heat-3d with the §3.7 load-to-compute model:
//! sweep `(h, w0, w1, w2)`, reject candidates exceeding the shared-memory
//! budget, and report the Pareto view the paper's selection is based on.
//!
//! Run with: `cargo run --release --example heat3d_tuning`

use hybrid_tiling::tilesize::{evaluate_tile, select_tile_sizes, SearchSpace};
use hybrid_tiling::TileParams;
use stencil::gallery;

fn main() {
    let program = gallery::heat3d();
    let smem_limit = 48 * 1024;

    println!("heat 3D tile-size sweep (steady-state loads per iteration):\n");
    println!(
        "{:>3} {:>4} {:>4} {:>4} {:>12} {:>12} {:>10} {:>8}",
        "h", "w0", "w1", "w2", "iterations", "loads", "smem(KB)", "ratio"
    );
    let space = SearchSpace {
        h: vec![1, 2, 3],
        w0: vec![1, 3, 5],
        wi: vec![vec![2, 4], vec![32]],
    };
    for &h in &space.h {
        for &w0 in &space.w0 {
            for &w1 in &space.wi[0] {
                for &w2 in &space.wi[1] {
                    let params = TileParams::new(h, &[w0, w1, w2]);
                    let Ok(m) = evaluate_tile(&program, &params) else {
                        continue;
                    };
                    let fits = m.smem_bytes <= smem_limit;
                    println!(
                        "{:>3} {:>4} {:>4} {:>4} {:>12} {:>12} {:>10.1} {:>8.3}{}",
                        h,
                        w0,
                        w1,
                        w2,
                        m.iterations,
                        m.steady_loads,
                        m.smem_bytes as f64 / 1024.0,
                        m.ratio(),
                        if fits { "" } else { "  (exceeds 48KB)" }
                    );
                }
            }
        }
    }

    let best = select_tile_sizes(&program, smem_limit, &space).expect("some candidate fits");
    println!(
        "\nselected: h = {}, w = {:?}  (ratio {:.3}, {:.1} KB shared)",
        best.params.h,
        best.params.w,
        best.ratio(),
        best.smem_bytes as f64 / 1024.0
    );
    println!(
        "paper note: the closed form 2(1+2h+h^2+w0(h+1))·w1·w2 matches the \
         enumerated iteration count: {}",
        hybrid_tiling::tilesize::formula_3d_iterations(
            best.params.h,
            best.params.w[0],
            best.params.w[1],
            best.params.w[2]
        ) == best.iterations
    );
}
