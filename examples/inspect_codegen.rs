//! Inspect the generated artifacts: the CUDA-like kernel source and the
//! Fig. 2 pseudo-PTX of the unrolled, divergence-free core tile.
//!
//! Run with: `cargo run --release --example inspect_codegen`

use gpu_codegen::cuda_emit::kernel_to_cuda;
use gpu_codegen::ptx_emit::core_tile_ptx;
use hybrid_hexagonal::prelude::*;
use stencil::gallery;

fn main() {
    let program = gallery::jacobi2d();
    let params = TileParams::new(2, &[3, 32]);
    let plan =
        generate_hybrid(&program, &params, &[512, 512], 16, CodegenOptions::best()).expect("plan");

    println!("=== generated kernels ===");
    for k in &plan.kernels {
        println!(
            "{}: block {}x{}x{}, {} bytes shared",
            k.name,
            k.block_dim[0],
            k.block_dim[1],
            k.block_dim[2],
            k.shared_bytes()
        );
    }

    println!("\n=== CUDA-like source of the phase-1 kernel (first 60 lines) ===");
    let src = kernel_to_cuda(&plan.kernels[1]);
    for line in src.lines().take(60) {
        println!("{line}");
    }
    println!("... ({} lines total)", src.lines().count());

    println!("\n=== Fig. 2: pseudo-PTX of 3 unrolled core-tile points ===");
    let (ptx, stats) = core_tile_ptx(&plan.kernels[1], 3);
    print!("{ptx}");
    println!(
        "\n{} loads / {} stores / {} arith — no control flow, register reuse across points",
        stats.loads, stats.stores, stats.arith
    );
}
