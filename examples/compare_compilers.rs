//! Head-to-head comparison on one stencil: PPCG-, Par4All-, Overtile-like
//! baselines vs hybrid hexagonal tiling, all on the same simulated GPU,
//! all verified bit-exactly against the oracle before timing.
//!
//! Run with: `cargo run --release --example compare_compilers [stencil]`
//! where `stencil` is one of jacobi2d, heat2d, laplacian2d, gradient2d,
//! fdtd2d, heat3d, laplacian3d, gradient3d (default heat2d).

use gpusim::timing;
use hybrid_hexagonal::prelude::*;
use stencil::gallery;

fn pick(name: &str) -> StencilProgram {
    match name {
        "jacobi2d" => gallery::jacobi2d(),
        "laplacian2d" => gallery::laplacian2d(),
        "gradient2d" => gallery::gradient2d(),
        "fdtd2d" => gallery::fdtd2d(),
        "heat3d" => gallery::heat3d(),
        "laplacian3d" => gallery::laplacian3d(),
        "gradient3d" => gallery::gradient3d(),
        _ => gallery::heat2d(),
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "heat2d".into());
    let program = pick(&name);
    let (dims, steps): (Vec<usize>, usize) = if program.spatial_dims() == 2 {
        (vec![96, 96], 10)
    } else {
        (vec![32, 32, 32], 5)
    };
    let planes = (program.max_dt() as usize) + 1;
    let init: Vec<Grid> = (0..program.num_fields())
        .map(|f| Grid::random(&dims, f as u64))
        .collect();
    let mut oracle = ReferenceExecutor::new(&program, &init);
    oracle.run(steps);

    let hybrid_params = hybrid_bench_params(&program);
    let plans = vec![
        ("par4all", generate_par4all(&program, &dims, steps)),
        ("ppcg", generate_ppcg(&program, &dims, steps)),
        ("overtile", generate_overtile(&program, &dims, steps)),
        (
            "hybrid",
            gpu_codegen::generate_hybrid(
                &program,
                &hybrid_params,
                &dims,
                steps,
                CodegenOptions::best(),
            )
            .expect("hybrid plan"),
        ),
    ];

    println!(
        "{}: {:?} grid, {} steps (fully simulated, no sampling)\n",
        program.name(),
        dims,
        steps
    );
    for (label, plan) in plans {
        let mut sim = GpuSim::new(DeviceConfig::gtx470(), &init, planes);
        sim.run_plan(&plan);
        let out = steps % planes;
        let exact = (0..program.num_fields()).all(|f| sim.plane(f, out).bit_equal(oracle.field(f)));
        assert!(exact, "{label} diverged from the oracle");
        let mut c = *sim.counters();
        c.point_updates = oracle.point_updates();
        let t = timing::estimate_time(&c, sim.device());
        println!(
            "{label:<10} bit-exact ✓  {:>7.2} GStencils/s (bound by {:>7}), dram {:>6.2} MB, gld eff {:>3.0}%",
            timing::gstencils_per_s(&c, sim.device()),
            t.bound_by(),
            c.dram_bytes() as f64 / 1e6,
            c.gld_efficiency() * 100.0,
        );
    }
}

/// Small-grid hybrid parameters (the bench crate's defaults target the
/// scaled table workloads).
fn hybrid_bench_params(program: &StencilProgram) -> TileParams {
    match (program.name(), program.spatial_dims()) {
        ("fdtd2d", _) => TileParams::new(2, &[3, 32]),
        (_, 2) => TileParams::new(3, &[3, 32]),
        _ => TileParams::new(1, &[2, 4, 16]),
    }
}
