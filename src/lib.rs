//! # hybrid-hexagonal — reproduction of *Hybrid Hexagonal/Classical Tiling
//! for GPUs* (Grosser, Cohen, Holewinski, Sadayappan, Verdoolaege — CGO 2014)
//!
//! This is the umbrella crate: it re-exports the member crates so examples
//! and downstream users have a single dependency.
//!
//! * [`polylib`] — exact rational polyhedral library (the isl substitute);
//! * [`stencil`] — stencil programs, dependence analysis, oracle executor,
//!   and the paper's benchmark gallery;
//! * [`hybrid_tiling`] — the paper's contribution: hexagonal tile shapes,
//!   two-phase schedules, classical inner tiling, verification, the §3.7
//!   tile-size model, and the §6 autotuning sweep
//!   ([`hybrid_tiling::tilesize::autotune`]);
//! * [`gpu_codegen`] — kernel IR, the §4 code-generation strategies, and
//!   CUDA/PTX pretty-printers;
//! * [`gpusim`] — the CUDA-execution-model simulator with Table 5's
//!   hardware counters, the roofline timing model, and deterministic
//!   block-parallel execution ([`gpusim::parallel`]);
//! * [`baselines`] — PPCG-, Par4All-, Overtile- and Patus-like comparator
//!   compilers plus the §5 diamond-tiling model.
//!
//! ```
//! use hybrid_hexagonal::prelude::*;
//!
//! let program = stencil::gallery::jacobi2d();
//! let schedule = HybridSchedule::compute(&program, &TileParams::new(2, &[3, 8]))?;
//! assert_eq!(schedule.hex().count_points(), 2 * 3 * (3 + 3));
//! # Ok::<(), hybrid_tiling::TileError>(())
//! ```

pub use baselines;
pub use gpu_codegen;
pub use gpusim;
pub use hybrid_tiling;
pub use polylib;
pub use stencil;

/// Convenient single-import surface for examples and tests.
pub mod prelude {
    pub use baselines::{generate_overtile, generate_par4all, generate_ppcg};
    pub use gpu_codegen::{generate_hybrid, CodegenError, CodegenOptions, SmemStrategy};
    pub use gpusim::{DeviceConfig, ExecError, GpuSim};
    pub use hybrid_tiling::{
        autotune, verify_schedule, AutotuneConfig, DepCone, HexShape, HybridSchedule, SearchSpace,
        TileParams,
    };
    pub use stencil::{Grid, ReferenceExecutor, StencilProgram};
}
